//! Polarity analysis: the structural basis of Positive Equality.
//!
//! Following Bryant, German and Velev (TOCL 2001), the equations of an EUFM
//! formula are classified by the polarity of their occurrences:
//!
//! - an equation is **positive** if every occurrence is under an even number
//!   of negations and never inside the controlling formula of an `ITE`;
//! - otherwise it is **general** (negative or mixed).
//!
//! Term values that are only ever compared by positive equations are
//! *p-terms* and may be given a *maximally diverse* interpretation (distinct
//! term variables evaluate to distinct values); terms reaching general
//! equations are *g-terms* and their pairwise equalities must be encoded
//! with fresh `e_ij` Boolean variables.
//!
//! The classification here works on the *value leaves* of equations — the
//! nodes reached from an equation operand by following only `ITE` branches.
//! After uninterpreted functions and memories have been eliminated these
//! leaves are term variables, and [`Analysis::gvars`] is exactly the set of
//! variables that need `e_ij` encoding.

use std::collections::{HashMap, HashSet};

use crate::context::Context;
use crate::node::{ExprId, Node, Sort};

/// The polarity of a formula occurrence.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Polarity {
    /// Appears only positively.
    Pos,
    /// Appears only negatively.
    Neg,
    /// Appears both ways, or inside an `ITE` control / predicate argument.
    Both,
}

impl Polarity {
    fn negate(self) -> Polarity {
        match self {
            Polarity::Pos => Polarity::Neg,
            Polarity::Neg => Polarity::Pos,
            Polarity::Both => Polarity::Both,
        }
    }

    fn merge(self, other: Polarity) -> Polarity {
        if self == other {
            self
        } else {
            Polarity::Both
        }
    }

    /// Whether this polarity forces general (`g-term`) treatment.
    pub fn is_general(self) -> bool {
        !matches!(self, Polarity::Pos)
    }

    fn mask(self) -> u8 {
        match self {
            Polarity::Pos => 0b01,
            Polarity::Neg => 0b10,
            Polarity::Both => 0b11,
        }
    }
}

/// The result of polarity analysis over one or more root formulas.
#[derive(Debug, Clone, Default)]
pub struct Analysis {
    /// Polarity of each equation node reachable from the roots.
    pub eq_polarity: HashMap<ExprId, Polarity>,
    /// Value leaves (term variables and applications) of *general*
    /// equations: these are the g-terms.
    pub gterms: HashSet<ExprId>,
    /// Term-variable leaves among [`Analysis::gterms`].
    pub gvars: HashSet<ExprId>,
    /// All term variables reachable from the roots.
    pub term_vars: HashSet<ExprId>,
    /// All propositional variables reachable from the roots.
    pub prop_vars: HashSet<ExprId>,
}

impl Analysis {
    /// Whether a term variable is a p-variable (never compared generally).
    pub fn is_pvar(&self, var: ExprId) -> bool {
        self.term_vars.contains(&var) && !self.gvars.contains(&var)
    }

    /// The number of general (negative or mixed) equations.
    pub fn general_eq_count(&self) -> usize {
        self.eq_polarity.values().filter(|p| p.is_general()).count()
    }

    /// The number of positive-only equations.
    pub fn positive_eq_count(&self) -> usize {
        self.eq_polarity
            .values()
            .filter(|p| !p.is_general())
            .count()
    }
}

/// Analyzes the polarity structure of `roots` (validity is to be checked, so
/// the roots themselves occur positively).
pub fn analyze(ctx: &Context, roots: &[ExprId]) -> Analysis {
    let mut analysis = Analysis::default();
    // seen[id] is a bitmask of polarities already propagated through id.
    let mut seen: HashMap<ExprId, u8> = HashMap::new();
    let mut work: Vec<(ExprId, Polarity)> = roots.iter().map(|&r| (r, Polarity::Pos)).collect();

    while let Some((id, pol)) = work.pop() {
        let mask = seen.entry(id).or_insert(0);
        if *mask & pol.mask() == pol.mask() {
            continue;
        }
        *mask |= pol.mask();

        match ctx.node(id) {
            Node::True | Node::False => {}
            Node::Var(_, Sort::Bool) => {
                analysis.prop_vars.insert(id);
            }
            Node::Var(_, Sort::Term) => {
                analysis.term_vars.insert(id);
            }
            Node::Var(_, Sort::Mem) => {}
            Node::Uf(_, args, _) => {
                // Arguments of uninterpreted symbols are compared for
                // functional consistency in both polarities.
                for &a in args.iter() {
                    push_operand(ctx, a, Polarity::Both, &mut work);
                }
            }
            Node::Not(a) => work.push((a, pol.negate())),
            Node::And(xs) | Node::Or(xs) => {
                for &x in xs.iter() {
                    work.push((x, pol));
                }
            }
            Node::Ite(c, t, e) => {
                // The controlling formula occurs in both polarities.
                work.push((c, Polarity::Both));
                push_operand(ctx, t, pol, &mut work);
                push_operand(ctx, e, pol, &mut work);
            }
            Node::Eq(a, b) => {
                let entry = analysis.eq_polarity.entry(id);
                let merged = match entry {
                    std::collections::hash_map::Entry::Occupied(mut o) => {
                        let m = o.get().merge(pol);
                        *o.get_mut() = m;
                        m
                    }
                    std::collections::hash_map::Entry::Vacant(v) => {
                        v.insert(pol);
                        pol
                    }
                };
                push_operand(ctx, a, merged, &mut work);
                push_operand(ctx, b, merged, &mut work);
            }
            Node::Read(m, a) => {
                push_operand(ctx, m, pol, &mut work);
                // Addresses are compared against write addresses in both
                // polarities by the forwarding property.
                push_operand(ctx, a, Polarity::Both, &mut work);
            }
            Node::Write(m, a, d) => {
                push_operand(ctx, m, pol, &mut work);
                push_operand(ctx, a, Polarity::Both, &mut work);
                push_operand(ctx, d, pol, &mut work);
            }
        }
    }

    // Second pass: collect value leaves of general equations.
    let general_eqs: Vec<ExprId> = analysis
        .eq_polarity
        .iter()
        .filter(|(_, p)| p.is_general())
        .map(|(&id, _)| id)
        .collect();
    for eq in general_eqs {
        if let Node::Eq(a, b) = ctx.node(eq) {
            collect_value_leaves(ctx, a, &mut analysis);
            collect_value_leaves(ctx, b, &mut analysis);
        }
    }
    analysis
}

/// For term/mem operands, the traversal continues with the polarity of the
/// enclosing equation (so leaves inherit it); formulas keep their own walk.
fn push_operand(ctx: &Context, id: ExprId, pol: Polarity, work: &mut Vec<(ExprId, Polarity)>) {
    // Terms and memories are traversed with the given polarity; the walker
    // above dispatches on node kind, so we can just push.
    let _ = ctx;
    work.push((id, pol));
}

fn collect_value_leaves(ctx: &Context, root: ExprId, analysis: &mut Analysis) {
    let mut stack = vec![root];
    let mut seen = HashSet::new();
    while let Some(id) = stack.pop() {
        if !seen.insert(id) {
            continue;
        }
        match ctx.node(id) {
            Node::Ite(_, t, e) => {
                stack.push(t);
                stack.push(e);
            }
            Node::Var(_, Sort::Term) => {
                analysis.gterms.insert(id);
                analysis.gvars.insert(id);
            }
            Node::Var(_, Sort::Mem) | Node::Uf(..) | Node::Read(..) | Node::Write(..) => {
                analysis.gterms.insert(id);
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn positive_equation_keeps_pvars() {
        let mut ctx = Context::new();
        let a = ctx.tvar("a");
        let b = ctx.tvar("b");
        let eq = ctx.eq(a, b);
        let an = analyze(&ctx, &[eq]);
        assert_eq!(an.eq_polarity[&eq], Polarity::Pos);
        assert!(an.is_pvar(a));
        assert!(an.is_pvar(b));
        assert_eq!(an.general_eq_count(), 0);
        assert_eq!(an.positive_eq_count(), 1);
    }

    #[test]
    fn negated_equation_makes_gvars() {
        let mut ctx = Context::new();
        let a = ctx.tvar("a");
        let b = ctx.tvar("b");
        let eq = ctx.eq(a, b);
        let f = ctx.not(eq);
        let an = analyze(&ctx, &[f]);
        assert_eq!(an.eq_polarity[&eq], Polarity::Neg);
        assert!(an.gvars.contains(&a));
        assert!(an.gvars.contains(&b));
    }

    #[test]
    fn ite_control_is_both_polarity() {
        let mut ctx = Context::new();
        let a = ctx.tvar("a");
        let b = ctx.tvar("b");
        let c = ctx.tvar("c");
        let d = ctx.tvar("d");
        let guard = ctx.eq(a, b);
        let ite = ctx.ite(guard, c, d);
        let goal = ctx.eq(ite, c);
        let an = analyze(&ctx, &[goal]);
        assert_eq!(an.eq_polarity[&guard], Polarity::Both);
        assert!(an.gvars.contains(&a));
        assert!(an.gvars.contains(&b));
        // c and d are leaves of the outer *positive* equation only
        assert_eq!(an.eq_polarity[&goal], Polarity::Pos);
        assert!(an.is_pvar(c));
        assert!(an.is_pvar(d));
    }

    #[test]
    fn mixed_occurrences_merge_to_both() {
        let mut ctx = Context::new();
        let a = ctx.tvar("a");
        let b = ctx.tvar("b");
        let eq = ctx.eq(a, b);
        let neq = ctx.not(eq);
        let f = ctx.or2(eq, neq); // folds to true by complementary detection
        assert_eq!(f, Context::TRUE);
        let x = ctx.pvar("x");
        let g1 = ctx.and2(x, eq);
        let g2 = {
            let n = ctx.not(eq);
            ctx.and2(x, n)
        };
        let g = ctx.or2(g1, g2);
        let an = analyze(&ctx, &[g]);
        assert_eq!(an.eq_polarity[&eq], Polarity::Both);
    }

    #[test]
    fn equation_under_implication_premise_is_negative() {
        let mut ctx = Context::new();
        let a = ctx.tvar("a");
        let b = ctx.tvar("b");
        let fa = ctx.uf("f", vec![a]);
        let fb = ctx.uf("f", vec![b]);
        let prem = ctx.eq(a, b);
        let concl = ctx.eq(fa, fb);
        let f = ctx.implies(prem, concl);
        let an = analyze(&ctx, &[f]);
        assert_eq!(an.eq_polarity[&prem], Polarity::Neg);
        assert_eq!(an.eq_polarity[&concl], Polarity::Pos);
        // a, b are g-vars via the negated premise
        assert!(an.gvars.contains(&a));
        assert!(an.gvars.contains(&b));
        // the UF applications are leaves of the positive conclusion only
        assert!(!an.gterms.contains(&fa));
    }
}
