//! S-expression printing of EUFM expressions.

use std::fmt::Write as _;

use crate::context::Context;
use crate::node::{ExprId, Node, Sort};

/// Renders `root` as an s-expression.
///
/// Shared sub-DAGs are printed repeatedly; use [`to_sexpr_capped`] for
/// potentially huge expressions.
pub fn to_sexpr(ctx: &Context, root: ExprId) -> String {
    to_sexpr_capped(ctx, root, usize::MAX).expect("uncapped printing cannot fail")
}

/// Renders `root` as an s-expression, giving up (returning `None`) once the
/// output exceeds `max_len` bytes. Useful for diagnostics on large DAGs.
pub fn to_sexpr_capped(ctx: &Context, root: ExprId, max_len: usize) -> Option<String> {
    let mut out = String::new();
    let mut stack: Vec<Result<ExprId, &'static str>> = vec![Ok(root)];
    while let Some(item) = stack.pop() {
        if out.len() > max_len {
            return None;
        }
        match item {
            Err(s) => out.push_str(s),
            Ok(id) => print_node(ctx, id, &mut out, &mut stack),
        }
    }
    Some(out)
}

fn print_node(
    ctx: &Context,
    id: ExprId,
    out: &mut String,
    stack: &mut Vec<Result<ExprId, &'static str>>,
) {
    let sep = |stack: &mut Vec<Result<ExprId, &'static str>>, children: &[ExprId]| {
        stack.push(Err(")"));
        for &c in children.iter().rev() {
            stack.push(Ok(c));
            stack.push(Err(" "));
        }
    };
    match ctx.node(id) {
        Node::True => out.push_str("true"),
        Node::False => out.push_str("false"),
        Node::Var(sym, sort) => {
            let tag = match sort {
                Sort::Bool => "b",
                Sort::Term => "t",
                Sort::Mem => "m",
            };
            let _ = write!(out, "{}:{}", ctx.name(sym), tag);
        }
        Node::Uf(sym, args, sort) => {
            let head = if sort == Sort::Bool { "up" } else { "uf" };
            let _ = write!(out, "({head} {}", ctx.name(sym));
            sep(stack, args);
        }
        Node::Ite(c, t, e) => {
            out.push_str("(ite");
            sep(stack, &[c, t, e]);
        }
        Node::Eq(a, b) => {
            out.push_str("(=");
            sep(stack, &[a, b]);
        }
        Node::Not(a) => {
            out.push_str("(not");
            sep(stack, &[a]);
        }
        Node::And(xs) => {
            out.push_str("(and");
            sep(stack, xs);
        }
        Node::Or(xs) => {
            out.push_str("(or");
            sep(stack, xs);
        }
        Node::Read(m, a) => {
            out.push_str("(read");
            sep(stack, &[m, a]);
        }
        Node::Write(m, a, d) => {
            out.push_str("(write");
            sep(stack, &[m, a, d]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prints_nested_expression() {
        let mut ctx = Context::new();
        let a = ctx.tvar("a");
        let b = ctx.tvar("b");
        let eq = ctx.eq(a, b);
        let x = ctx.pvar("x");
        let f = ctx.and2(x, eq);
        let s = to_sexpr(&ctx, f);
        // operands of `and` are sorted by id: eq was created after x? x after eq.
        assert!(s.contains("(= a:t b:t)"));
        assert!(s.contains("x:b"));
        assert!(s.starts_with("(and"));
    }

    #[test]
    fn cap_kicks_in() {
        let mut ctx = Context::new();
        let mut f = ctx.pvar("x0");
        for i in 1..100 {
            let v = ctx.pvar(&format!("x{i}"));
            f = ctx.and2(f, v);
        }
        assert!(to_sexpr_capped(&ctx, f, 16).is_none());
        assert!(to_sexpr_capped(&ctx, f, 1 << 20).is_some());
    }

    #[test]
    fn prints_memory_ops() {
        let mut ctx = Context::new();
        let m = ctx.mvar("rf");
        let a = ctx.tvar("a");
        let d = ctx.tvar("d");
        let w = ctx.write(m, a, d);
        let r = ctx.read(w, a);
        assert_eq!(to_sexpr(&ctx, r), "(read (write rf:m a:t d:t) a:t)");
    }
}
