//! A structural-hash intern table: the raw-entry pattern over an external
//! arena.
//!
//! The table stores only `u32` expression ids — never the node contents.
//! Identity lives in the arena; the table maps a 64-bit structural hash to
//! candidate ids via open addressing with linear probing, and the caller
//! supplies the comparison against the arena. This is the rustc
//! `intern_ref` / hashbrown raw-entry idiom, hand-rolled on `std` only: no
//! duplicate node storage, no per-entry heap allocation, and lookups touch
//! one cache line of the bucket array before a single arena probe.

/// Sentinel for an empty bucket. `u32::MAX` is never a legal id: the arena
/// guards id allocation with a `u32::try_from` overflow check, so at most
/// `u32::MAX` nodes exist and the largest legal id is `u32::MAX - 1`.
const EMPTY: u32 = u32::MAX;

/// Open-addressed hash table of arena ids keyed by structural hash.
#[derive(Debug, Clone)]
pub(crate) struct InternTable {
    /// Power-of-two bucket array holding raw ids (or [`EMPTY`]).
    buckets: Vec<u32>,
    /// Number of occupied buckets.
    len: usize,
}

impl InternTable {
    /// An empty table with a small initial capacity.
    pub(crate) fn new() -> Self {
        InternTable {
            buckets: vec![EMPTY; 16],
            len: 0,
        }
    }

    /// The number of interned entries.
    #[cfg(test)]
    pub(crate) fn len(&self) -> usize {
        self.len
    }

    /// Looks up an entry by hash, resolving collisions through `matches`
    /// (which must compare the candidate id's node against the probe key,
    /// including its stored hash if it caches one).
    pub(crate) fn find(&self, hash: u64, mut matches: impl FnMut(u32) -> bool) -> Option<u32> {
        let mask = self.buckets.len() - 1;
        let mut slot = (hash as usize) & mask;
        loop {
            match self.buckets[slot] {
                EMPTY => return None,
                cand => {
                    if matches(cand) {
                        return Some(cand);
                    }
                }
            }
            slot = (slot + 1) & mask;
        }
    }

    /// Inserts an id known *not* to be present (callers must [`find`] first;
    /// `InternTable::find`). Grows at 7/8 load, rehashing existing entries
    /// through `hash_of` — hashes live in the arena, not the table.
    pub(crate) fn insert_unique(&mut self, hash: u64, id: u32, hash_of: impl Fn(u32) -> u64) {
        debug_assert_ne!(id, EMPTY, "id space exhausted");
        if (self.len + 1) * 8 > self.buckets.len() * 7 {
            self.grow(&hash_of);
        }
        Self::place(&mut self.buckets, hash, id);
        self.len += 1;
    }

    fn place(buckets: &mut [u32], hash: u64, id: u32) {
        let mask = buckets.len() - 1;
        let mut slot = (hash as usize) & mask;
        while buckets[slot] != EMPTY {
            slot = (slot + 1) & mask;
        }
        buckets[slot] = id;
    }

    fn grow(&mut self, hash_of: &impl Fn(u32) -> u64) {
        let mut next = vec![EMPTY; self.buckets.len() * 2];
        for &id in self.buckets.iter().filter(|&&b| b != EMPTY) {
            Self::place(&mut next, hash_of(id), id);
        }
        self.buckets = next;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Identity-hash smoke test: ids dedupe through find, growth rehashes.
    #[test]
    fn find_insert_grow() {
        let mut table = InternTable::new();
        let hash_of = |id: u32| u64::from(id).wrapping_mul(0x9e37_79b9_7f4a_7c15);
        for id in 0..1000u32 {
            let h = hash_of(id);
            assert_eq!(table.find(h, |c| c == id), None);
            table.insert_unique(h, id, hash_of);
        }
        assert_eq!(table.len(), 1000);
        for id in 0..1000u32 {
            assert_eq!(table.find(hash_of(id), |c| c == id), Some(id));
        }
        // A colliding hash is resolved by the matcher, not the table.
        let h0 = hash_of(0);
        assert_eq!(table.find(h0, |_| false), None);
    }
}
