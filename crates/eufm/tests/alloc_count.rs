//! Allocation accounting for the hash-consing hot path.
//!
//! The seed `Context` kept a `HashMap<Node, ExprId>` next to the node arena,
//! so every interning miss cloned the node — including its `Box<[ExprId]>`
//! children — into the map key: two heap copies of every distinct node. The
//! intern table stores bare ids and compares against the arena, so a miss
//! stores the node once and a hit allocates nothing beyond the probe key the
//! caller already built. This test pins that budget with a counting global
//! allocator so the doubled allocation cannot quietly come back.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use eufm::{Context, ExprId, Sort};

struct CountingAlloc;

static ALLOC_CALLS: AtomicU64 = AtomicU64::new(0);

// SAFETY: delegates verbatim to `System`; the counter is a relaxed atomic.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn alloc_calls() -> u64 {
    ALLOC_CALLS.load(Ordering::Relaxed)
}

/// Builds a deep, wide formula exercising every interning path: fresh
/// symbols, n-ary `Uf` applications, equations, `ITE` chains, and n-ary
/// conjunctions. Returns the root and the number of live nodes created.
fn build_workload(ctx: &mut Context, salt: &str, rounds: usize) -> ExprId {
    let mut layer: Vec<ExprId> = (0..24).map(|i| ctx.tvar(&format!("t{salt}{i}"))).collect();
    let mut obligations = Vec::new();
    for r in 0..rounds {
        let mut next = Vec::with_capacity(layer.len());
        for w in layer.windows(2) {
            let app = ctx.uf(&format!("f{salt}{}", r % 3), vec![w[0], w[1]]);
            next.push(app);
        }
        let guard = {
            let e = ctx.eq(layer[0], layer[layer.len() - 1]);
            let p = ctx.pvar(&format!("g{salt}{r}"));
            ctx.and(vec![e, p])
        };
        let merged = ctx.ite(guard, next[0], *next.last().unwrap());
        obligations.push(ctx.eq(merged, layer[0]));
        next.push(merged);
        layer = next;
    }
    ctx.and(obligations)
}

/// Interning misses must cost a bounded number of heap allocations per
/// distinct node, and re-building an identical formula (all cache hits)
/// must not grow the context at all.
#[test]
fn interning_allocation_budget() {
    let mut ctx = Context::new();
    // Warm the symbol interner and arena vectors out of the measured region
    // so amortized `Vec` growth doesn't dominate small counts.
    build_workload(&mut ctx, "warm", 4);

    let nodes_before = ctx.len();
    let calls_before = alloc_calls();
    let root = build_workload(&mut ctx, "live", 6);
    let calls_after = alloc_calls();
    let fresh_nodes = (ctx.len() - nodes_before) as u64;
    let spent = calls_after - calls_before;
    assert!(fresh_nodes > 100, "workload too small: {fresh_nodes} nodes");

    // Budget per distinct node: one `Box<[ExprId]>` for n-ary children plus
    // symbol-name formatting and amortized vector/table growth. The seed
    // representation (node cloned into the map key, map entry boxes) sat
    // well above 5 calls per node on this workload; the arena-backed table
    // stays under 4. Guard the midpoint so a regression trips loudly.
    assert!(
        spent < fresh_nodes * 5,
        "interning allocated {spent} times for {fresh_nodes} new nodes"
    );

    // A second identical build is pure cache hits: no new nodes, and an
    // allocation budget that covers only the transient probe keys (child
    // vectors built by smart constructors), not node storage.
    let nodes_mid = ctx.len();
    let calls_mid = alloc_calls();
    let root2 = build_workload(&mut ctx, "live", 6);
    let hit_spent = alloc_calls() - calls_mid;
    assert_eq!(root, root2, "hash-consing must dedupe identical formulas");
    assert_eq!(ctx.len(), nodes_mid, "cache hits must not grow the arena");
    assert!(
        hit_spent < spent,
        "hit path allocated {hit_spent}, miss path {spent}"
    );

    println!(
        "alloc-count: {spent} calls for {fresh_nodes} distinct nodes \
         ({:.2}/node); replay (all hits): {hit_spent} calls",
        spent as f64 / fresh_nodes as f64
    );
    let _ = ctx.sort(root);
    let _ = Sort::Bool;
}
