//! Differential equivalence suite for the arena-interned term core.
//!
//! The flat arena (POD records + contiguous child slab + id-keyed intern
//! table) must be observationally identical to the naive representation it
//! replaced: a `Vec` of owned nodes deduplicated through a `HashMap`. This
//! suite keeps that naive interner alive as a *reference implementation*
//! and checks the real [`Context`] against it in lockstep:
//!
//! - every context built through the smart constructors mirrors into the
//!   reference interner with **exactly the same dense ids** (no structural
//!   duplicates, no gaps, `TRUE = 0` / `FALSE = 1`);
//! - re-running a construction recipe — in a fresh context, or in a context
//!   pre-polluted with unrelated nodes so every record lands at different
//!   offsets — yields identical structure and identical digests, because
//!   digests and cache keys are layout-independent by construction;
//! - `reachable` yields the same post-order as an independently written
//!   traversal over `children()`;
//! - substitution results agree across independently built contexts;
//! - `print` → `parse` → `print` is a fixpoint and preserves digests.
//!
//! The digest golden vectors pinned here duplicate the unit-test vectors in
//! `eufm::digest` on purpose: the memo store and the `JobKey` cache persist
//! digests to disk, so any drift must fail loudly in more than one place.

use std::collections::{HashMap, HashSet};

use proptest::prelude::*;

use eufm::digest::{digest_hex, Digester};
use eufm::subst::{substitute, Substitution};
use eufm::{Context, ExprId, Node, Sort, Symbol};

// ---------------------------------------------------------------------------
// The naive reference interner
// ---------------------------------------------------------------------------

/// An owned deep-copy of a [`Node`] view, usable as a `HashMap` key — the
/// exact shape the seed representation stored per node.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
enum OwnedNode {
    True,
    False,
    Var(Symbol, Sort),
    Uf(Symbol, Vec<ExprId>, Sort),
    Ite(ExprId, ExprId, ExprId),
    Eq(ExprId, ExprId),
    Not(ExprId),
    And(Vec<ExprId>),
    Or(Vec<ExprId>),
    Read(ExprId, ExprId),
    Write(ExprId, ExprId, ExprId),
}

fn own(node: Node<'_>) -> OwnedNode {
    match node {
        Node::True => OwnedNode::True,
        Node::False => OwnedNode::False,
        Node::Var(sym, sort) => OwnedNode::Var(sym, sort),
        Node::Uf(sym, args, sort) => OwnedNode::Uf(sym, args.to_vec(), sort),
        Node::Ite(c, t, e) => OwnedNode::Ite(c, t, e),
        Node::Eq(a, b) => OwnedNode::Eq(a, b),
        Node::Not(a) => OwnedNode::Not(a),
        Node::And(xs) => OwnedNode::And(xs.to_vec()),
        Node::Or(xs) => OwnedNode::Or(xs.to_vec()),
        Node::Read(m, a) => OwnedNode::Read(m, a),
        Node::Write(m, a, d) => OwnedNode::Write(m, a, d),
    }
}

/// The seed-representation interner: owned nodes in insertion order,
/// deduplicated through a map keyed by the full node.
#[derive(Default)]
struct RefInterner {
    nodes: Vec<OwnedNode>,
    map: HashMap<OwnedNode, ExprId>,
}

impl RefInterner {
    fn insert(&mut self, node: OwnedNode) -> (ExprId, bool) {
        if let Some(&id) = self.map.get(&node) {
            return (id, false);
        }
        let id = ExprId::from_index(self.nodes.len());
        self.nodes.push(node.clone());
        self.map.insert(node, id);
        (id, true)
    }
}

/// Replays every arena record through the reference interner, asserting the
/// naive `HashMap` dedupe assigns the same dense id to every node. This is
/// the core differential check: if the arena's intern table ever failed to
/// find an existing entry (or found a wrong one), the replayed ids would
/// diverge from the arena's.
fn mirror(ctx: &Context) -> RefInterner {
    let mut reference = RefInterner::default();
    for index in 0..ctx.len() {
        let id = ExprId::from_index(index);
        let (ref_id, fresh) = reference.insert(own(ctx.node(id)));
        assert!(
            fresh,
            "arena node {index} ({:?}) is a structural duplicate of {}",
            ctx.node(id),
            ref_id.index()
        );
        assert_eq!(ref_id, id, "reference interner disagrees on node {index}");
    }
    reference
}

// ---------------------------------------------------------------------------
// Random construction recipes
// ---------------------------------------------------------------------------

/// A stack-machine recipe for building a formula. Replaying the same recipe
/// in any context must produce structurally identical results.
#[derive(Debug, Clone)]
enum Op {
    PropVar(u8),
    EqVars(u8, u8),
    EqUf(u8, u8),
    EqBinUf(u8, u8),
    ReadWrite(u8, u8),
    Not,
    And,
    Or,
    Ite,
}

fn recipes() -> impl Strategy<Value = Vec<Op>> {
    prop::collection::vec(
        prop_oneof![
            (0u8..4).prop_map(Op::PropVar),
            (0u8..4, 0u8..4).prop_map(|(a, b)| Op::EqVars(a, b)),
            (0u8..4, 0u8..4).prop_map(|(a, b)| Op::EqUf(a, b)),
            (0u8..4, 0u8..4).prop_map(|(a, b)| Op::EqBinUf(a, b)),
            (0u8..4, 0u8..4).prop_map(|(a, b)| Op::ReadWrite(a, b)),
            Just(Op::Not),
            Just(Op::And),
            Just(Op::Or),
            Just(Op::Ite),
        ],
        1..50,
    )
}

/// Replays a recipe, always leaving one formula on the stack.
fn build(ctx: &mut Context, ops: &[Op]) -> ExprId {
    let tvars: Vec<ExprId> = (0..4).map(|i| ctx.tvar(&format!("t{i}"))).collect();
    let mem = ctx.mvar("m");
    let mut stack: Vec<ExprId> = Vec::new();
    for op in ops {
        match *op {
            Op::PropVar(i) => stack.push(ctx.pvar(&format!("p{i}"))),
            Op::EqVars(a, b) => {
                let e = ctx.eq(tvars[a as usize], tvars[b as usize]);
                stack.push(e);
            }
            Op::EqUf(a, b) => {
                let fa = ctx.uf("f", vec![tvars[a as usize]]);
                let fb = ctx.uf("f", vec![tvars[b as usize]]);
                let e = ctx.eq(fa, fb);
                stack.push(e);
            }
            Op::EqBinUf(a, b) => {
                let g = ctx.uf("g", vec![tvars[a as usize], tvars[b as usize]]);
                let e = ctx.eq(g, tvars[a as usize]);
                stack.push(e);
            }
            Op::ReadWrite(a, d) => {
                let w = ctx.write(mem, tvars[a as usize], tvars[d as usize]);
                let r = ctx.read(w, tvars[d as usize]);
                let e = ctx.eq(r, tvars[a as usize]);
                stack.push(e);
            }
            Op::Not => {
                if let Some(x) = stack.pop() {
                    let n = ctx.not(x);
                    stack.push(n);
                }
            }
            Op::And => {
                if stack.len() >= 2 {
                    let (b, a) = (stack.pop().unwrap(), stack.pop().unwrap());
                    let r = ctx.and2(a, b);
                    stack.push(r);
                }
            }
            Op::Or => {
                if stack.len() >= 2 {
                    let (b, a) = (stack.pop().unwrap(), stack.pop().unwrap());
                    let r = ctx.or2(a, b);
                    stack.push(r);
                }
            }
            Op::Ite => {
                if stack.len() >= 3 {
                    let e = stack.pop().unwrap();
                    let t = stack.pop().unwrap();
                    let c = stack.pop().unwrap();
                    let r = ctx.ite(c, t, e);
                    stack.push(r);
                }
            }
        }
    }
    let fallback = ctx.pvar("p0");
    stack.pop().unwrap_or(fallback)
}

/// A context-independent structural fingerprint: symbols are hashed by
/// *name* (symbol numbering differs across contexts) and the operands of
/// the canonically-id-ordered connectives (`and`/`or`/`eq`) are combined
/// commutatively, so two contexts holding the same formula modulo operand
/// reordering fingerprint identically. This is the reference equivalence
/// for cross-context checks where `Digester` is (correctly) id-order
/// sensitive.
fn fingerprint(ctx: &Context, root: ExprId) -> u64 {
    fn combine(kind: u64, parts: &[u64]) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64 ^ kind;
        for &p in parts {
            h = (h ^ p).wrapping_mul(0x0000_0100_0000_01b3);
        }
        h
    }
    fn name_hash(name: &str) -> u64 {
        combine(
            0x5a5a,
            &[name
                .bytes()
                .map(u64::from)
                .fold(7, |a, b| a.wrapping_mul(31).wrapping_add(b))],
        )
    }
    let mut memo: HashMap<ExprId, u64> = HashMap::new();
    for id in ctx.reachable(&[root]) {
        let f = |c: ExprId| memo[&c];
        let commutative = |xs: &[ExprId]| xs.iter().map(|&x| f(x)).fold(0u64, u64::wrapping_add);
        let h = match ctx.node(id) {
            Node::True => combine(1, &[]),
            Node::False => combine(2, &[]),
            Node::Var(sym, sort) => combine(3, &[name_hash(ctx.name(sym)), sort as u64]),
            Node::Uf(sym, args, sort) => {
                let mut parts = vec![name_hash(ctx.name(sym)), sort as u64];
                parts.extend(args.iter().map(|&a| f(a)));
                combine(4, &parts)
            }
            Node::Ite(c, t, e) => combine(5, &[f(c), f(t), f(e)]),
            Node::Eq(a, b) => combine(6, &[f(a).wrapping_add(f(b))]),
            Node::Not(a) => combine(7, &[f(a)]),
            Node::And(xs) => combine(8, &[commutative(xs)]),
            Node::Or(xs) => combine(9, &[commutative(xs)]),
            Node::Read(m, a) => combine(10, &[f(m), f(a)]),
            Node::Write(m, a, d) => combine(11, &[f(m), f(a), f(d)]),
        };
        memo.insert(id, h);
    }
    memo[&root]
}

/// Independently written post-order over `children()`, mirroring the
/// documented contract of [`Context::reachable`] (each node once, children
/// strictly before parents, last child explored first).
fn reference_postorder(ctx: &Context, roots: &[ExprId]) -> Vec<ExprId> {
    let mut seen: HashSet<ExprId> = HashSet::new();
    let mut out = Vec::new();
    let mut stack: Vec<(ExprId, bool)> = roots.iter().rev().map(|&r| (r, false)).collect();
    while let Some((id, expanded)) = stack.pop() {
        if expanded {
            out.push(id);
            continue;
        }
        if !seen.insert(id) {
            continue;
        }
        stack.push((id, true));
        for &c in ctx.children(id) {
            stack.push((c, false));
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Differential proptests
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Every context built through the smart constructors replays cleanly
    /// through the naive reference interner with identical dense ids.
    #[test]
    fn arena_ids_match_reference_interner(ops in recipes()) {
        let mut ctx = Context::new();
        let root = build(&mut ctx, &ops);
        let reference = mirror(&ctx);
        prop_assert_eq!(reference.nodes.len(), ctx.len());
        prop_assert!(root.index() < ctx.len());
    }

    /// Replaying a recipe in a fresh context reproduces the same ids, the
    /// same arena length, and the same digest: construction is a pure
    /// function of the recipe.
    #[test]
    fn construction_is_deterministic(ops in recipes()) {
        let mut ctx_a = Context::new();
        let root_a = build(&mut ctx_a, &ops);
        let mut ctx_b = Context::new();
        let root_b = build(&mut ctx_b, &ops);
        prop_assert_eq!(root_a, root_b);
        prop_assert_eq!(ctx_a.len(), ctx_b.len());
        let da = Digester::new().digest(&ctx_a, root_a);
        let db = Digester::new().digest(&ctx_b, root_b);
        prop_assert_eq!(da, db);
    }

    /// Re-interning every reachable node from its (already interned)
    /// children returns the original id: the intern table finds what the
    /// reference `HashMap` would find.
    #[test]
    fn reinterning_is_idempotent(ops in recipes()) {
        let mut ctx = Context::new();
        let root = build(&mut ctx, &ops);
        let reachable: Vec<ExprId> = ctx.reachable(&[root]).collect();
        for id in reachable {
            let redone = match own(ctx.node(id)) {
                OwnedNode::True => Context::TRUE,
                OwnedNode::False => Context::FALSE,
                OwnedNode::Var(sym, sort) => {
                    let name = ctx.name(sym).to_owned();
                    ctx.var(&name, sort)
                }
                OwnedNode::Uf(sym, args, sort) => ctx.apply_sym(sym, args, sort),
                OwnedNode::Ite(c, t, e) => ctx.ite(c, t, e),
                OwnedNode::Eq(a, b) => ctx.eq(a, b),
                OwnedNode::Not(a) => ctx.not(a),
                OwnedNode::And(xs) => ctx.and(xs),
                OwnedNode::Or(xs) => ctx.or(xs),
                OwnedNode::Read(m, a) => ctx.read(m, a),
                OwnedNode::Write(m, a, d) => ctx.write(m, a, d),
            };
            prop_assert_eq!(redone, id, "re-interning node {} diverged", id.index());
        }
    }

    /// `reachable` agrees with the independently written post-order.
    #[test]
    fn reachable_matches_reference_postorder(ops in recipes()) {
        let mut ctx = Context::new();
        let root = build(&mut ctx, &ops);
        let via_iter: Vec<ExprId> = ctx.reachable(&[root]).collect();
        let via_reference = reference_postorder(&ctx, &[root]);
        prop_assert_eq!(via_iter, via_reference);
        // multi-root traversal too (root twice must not duplicate)
        let twice: Vec<ExprId> = ctx.reachable(&[root, root]).collect();
        let twice_reference = reference_postorder(&ctx, &[root, root]);
        prop_assert_eq!(twice, twice_reference);
    }

    /// Substitution commutes with context identity: substituting in two
    /// independently built contexts yields digest-identical results, and
    /// the identity substitution is a no-op.
    #[test]
    fn substitution_is_context_independent(ops in recipes()) {
        let mut ctx_a = Context::new();
        let root_a = build(&mut ctx_a, &ops);
        let mut ctx_b = Context::new();
        let root_b = build(&mut ctx_b, &ops);

        let identity = Substitution::new();
        prop_assert_eq!(substitute(&mut ctx_a, root_a, &identity), root_a);

        // swap two term variables (sort-preserving by construction)
        let (t0_a, t1_a) = (ctx_a.tvar("t0"), ctx_a.tvar("t1"));
        let mut swap_a = Substitution::new();
        swap_a.insert(t0_a, t1_a);
        swap_a.insert(t1_a, t0_a);
        let sub_a = substitute(&mut ctx_a, root_a, &swap_a);

        let (t0_b, t1_b) = (ctx_b.tvar("t0"), ctx_b.tvar("t1"));
        let mut swap_b = Substitution::new();
        swap_b.insert(t0_b, t1_b);
        swap_b.insert(t1_b, t0_b);
        let sub_b = substitute(&mut ctx_b, root_b, &swap_b);

        let da = Digester::new().digest(&ctx_a, sub_a);
        let db = Digester::new().digest(&ctx_b, sub_b);
        prop_assert_eq!(da, db);
        // and the substituted contexts still mirror cleanly
        mirror(&ctx_a);
    }

    /// Digests are layout-independent: building the same formula in a
    /// context pre-polluted with unrelated nodes (different ids, different
    /// slab offsets) yields the identical digest. The memo store and the
    /// `JobKey` cache persist these digests, so this is load-bearing.
    #[test]
    fn digest_is_layout_independent(ops in recipes(), junk in 1usize..40) {
        let mut clean = Context::new();
        let root_clean = build(&mut clean, &ops);

        let mut polluted = Context::new();
        for i in 0..junk {
            let v = polluted.tvar(&format!("junk{i}"));
            let u = polluted.uf("junkfn", vec![v]);
            polluted.eq(u, v);
        }
        let root_polluted = build(&mut polluted, &ops);

        let dc = Digester::new().digest(&clean, root_clean);
        let dp = Digester::new().digest(&polluted, root_polluted);
        prop_assert_eq!(dc, dp);
    }

    /// `print` → `parse` → `print` reaches a fixpoint after one round trip.
    ///
    /// (The *first* reprint may reorder `and`/`or` operands: n-ary
    /// connectives canonicalize children by id, and a fresh context assigns
    /// ids in text order rather than recipe order. That normalization is
    /// seed semantics, unchanged by the arena. From the first reprint on,
    /// the text, the ids, and the digest are all stable.)
    #[test]
    fn print_parse_print_fixpoint(ops in recipes()) {
        let mut ctx = Context::new();
        let root = build(&mut ctx, &ops);
        let text = eufm::print::to_sexpr(&ctx, root);

        // round-tripping into the *same* context hits the intern table and
        // comes back as the very same id
        let replayed = eufm::parse::from_sexpr(&mut ctx, &text).expect("reparse in place");
        prop_assert_eq!(replayed, root);

        let mut fresh_a = Context::new();
        let root_a = eufm::parse::from_sexpr(&mut fresh_a, &text).expect("reparse");
        let normalized = eufm::print::to_sexpr(&fresh_a, root_a);

        let mut fresh_b = Context::new();
        let root_b = eufm::parse::from_sexpr(&mut fresh_b, &normalized).expect("reparse normalized");
        prop_assert_eq!(eufm::print::to_sexpr(&fresh_b, root_b), normalized);

        let da = Digester::new().digest(&fresh_a, root_a);
        let db = Digester::new().digest(&fresh_b, root_b);
        prop_assert_eq!(da, db);
        // and modulo operand order, the reparsed formula IS the original
        prop_assert_eq!(fingerprint(&ctx, root), fingerprint(&fresh_a, root_a));
        mirror(&fresh_a);
    }

    /// `extract` compacts a sub-DAG into a fresh context that mirrors
    /// cleanly through the reference interner and carries exactly the same
    /// formula (same fingerprint, same node count).
    #[test]
    fn extract_preserves_structure(ops in recipes()) {
        let mut ctx = Context::new();
        let root = build(&mut ctx, &ops);
        let (compact, roots) = ctx.extract(&[root]);
        prop_assert_eq!(roots.len(), 1);
        prop_assert!(compact.len() <= ctx.len());
        prop_assert_eq!(fingerprint(&ctx, root), fingerprint(&compact, roots[0]));
        mirror(&compact);

        let (compact2, roots2) = compact.extract(&[roots[0]]);
        prop_assert_eq!(compact2.len(), compact.len());
        prop_assert_eq!(
            fingerprint(&compact, roots[0]),
            fingerprint(&compact2, roots2[0])
        );
    }
}

// ---------------------------------------------------------------------------
// Pinned vectors and arena-growth coverage
// ---------------------------------------------------------------------------

/// Golden digest vectors — the exact values the memo store and `JobKey`
/// cache persist. Duplicated from `eufm::digest`'s unit test so drift
/// breaks an integration surface too, not only the crate-local test.
#[test]
fn golden_digest_vectors_are_pinned() {
    let mut ctx = Context::new();
    let mut d = Digester::new();
    assert_eq!(
        digest_hex(d.digest(&ctx, Context::TRUE)),
        "ca3282ea3b83d94f70816a0a3978e7b3"
    );
    assert_eq!(
        digest_hex(d.digest(&ctx, Context::FALSE)),
        "29bb76e55583d94f7081428ced83b319"
    );
    let a = ctx.tvar("a");
    let b = ctx.tvar("b");
    let eq = ctx.eq(a, b);
    assert_eq!(
        digest_hex(d.digest(&ctx, eq)),
        "76655c22dae82425e54e4006f9ffe1cf"
    );
    let fa = ctx.uf("f", vec![a]);
    let fb = ctx.uf("f", vec![b]);
    let concl = ctx.eq(fa, fb);
    let prop = ctx.implies(eq, concl);
    assert_eq!(
        digest_hex(d.digest(&ctx, prop)),
        "4e8c5a2e3616a0d4f8af719a8e619009"
    );
}

/// The intern table starts at 16 buckets and rehashes as the arena grows;
/// dedupe must survive every resize. 4000 distinct equations force ~8
/// doublings; looking all of them up again afterwards must return the
/// original ids with zero new nodes.
#[test]
fn dedupe_survives_intern_table_growth() {
    let mut ctx = Context::new();
    let mut ids = Vec::new();
    for i in 0..2000 {
        let x = ctx.tvar(&format!("x{i}"));
        let fx = ctx.uf("f", vec![x]);
        ids.push((i, ctx.eq(fx, x)));
    }
    let len_before = ctx.len();
    for &(i, expected) in &ids {
        let x = ctx.tvar(&format!("x{i}"));
        let fx = ctx.uf("f", vec![x]);
        assert_eq!(ctx.eq(fx, x), expected, "lookup of eq #{i} after growth");
    }
    assert_eq!(ctx.len(), len_before, "replay must intern nothing new");
    mirror(&ctx);
}

/// Out-of-range ids are rejected gracefully — `try_node`/`try_sort` return
/// `None` instead of indexing past the arena, which is what lets the lint
/// passes traverse corrupted DAGs. (The u32 id-space overflow itself is
/// guarded by an explicit capacity check in the arena; exhausting 2^32
/// nodes is not reachable in a test.)
#[test]
fn out_of_range_ids_are_rejected() {
    let mut ctx = Context::new();
    let a = ctx.pvar("a");
    assert!(ctx.try_node(a).is_some());
    let beyond = ExprId::from_index(ctx.len());
    assert!(ctx.try_node(beyond).is_none());
    assert!(ctx.try_sort(beyond).is_none());
    let far = ExprId::from_index(usize::try_from(u32::MAX - 1).expect("fits"));
    assert!(ctx.try_node(far).is_none());
}

/// `insert_unchecked` bypasses the intern table: the malformed duplicate it
/// creates must NOT be found by later constructor calls (so hash-consing
/// of checked nodes is unaffected), and the reference-interner mirror must
/// flag it as the structural duplicate it is.
#[test]
fn insert_unchecked_stays_out_of_the_intern_table() {
    let mut ctx = Context::new();
    let a = ctx.tvar("a");
    let b = ctx.tvar("b");
    let eq = ctx.eq(a, b);
    let dup = ctx.insert_unchecked(Node::Eq(a, b), Sort::Bool);
    assert_ne!(eq, dup, "unchecked insertion must create a fresh node");
    // the constructor still finds the *original* interned node
    assert_eq!(ctx.eq(a, b), eq);
    // and the naive mirror detects the duplicate
    let mut reference = RefInterner::default();
    let mut duplicate_at = None;
    for index in 0..ctx.len() {
        let id = ExprId::from_index(index);
        let (prev, fresh) = reference.insert(own(ctx.node(id)));
        if !fresh {
            duplicate_at = Some((prev, id));
        }
    }
    assert_eq!(duplicate_at, Some((eq, dup)));
}
