//! Criterion bench for Table 1: symbolic simulation generating the EUFM
//! correctness formula, across reorder-buffer sizes and widths.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use uarch::{correctness, Config};

fn bench_generation(c: &mut Criterion) {
    let mut group = c.benchmark_group("table1_simulate");
    group.sample_size(10);
    for (size, width) in [(8usize, 2usize), (16, 4), (32, 4), (64, 4), (64, 16)] {
        let config = Config::new(size, width).expect("config");
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("rob{size}xw{width}")),
            &config,
            |b, config| {
                b.iter(|| correctness::generate(config).expect("generate"));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_generation);
criterion_main!(benches);
