//! Criterion bench for Table 5: SAT time on the rewritten formulas, per
//! issue/retire width. The reorder-buffer size does not matter (the
//! rewriting rules removed the initial instructions), so each width runs at
//! the smallest feasible size.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use eufm::Context;
use eufm::ExprId;
use evc::check::{check_validity, CheckOptions};
use evc::mem::MemoryModel;
use evc::rewrite::{rewrite_correctness, RewriteInput, RewriteOptions};
use uarch::{correctness, Config};

fn rewritten_formula(width: usize) -> (Context, ExprId) {
    let config = Config::new(width.max(2), width).expect("config");
    let mut bundle = correctness::generate(&config).expect("generate");
    let input = RewriteInput {
        formula: bundle.formula,
        rf_impl: bundle.rf_impl,
        rf_spec0: bundle.rf_spec[0],
    };
    let outcome =
        rewrite_correctness(&mut bundle.ctx, &input, &RewriteOptions::default()).expect("rewrite");
    (bundle.ctx, outcome.formula)
}

fn bench_sat(c: &mut Criterion) {
    let mut group = c.benchmark_group("table5_sat");
    group.sample_size(10);
    for width in [1usize, 2, 4, 8, 16] {
        let (ctx, formula) = rewritten_formula(width);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("w{width}")),
            &(ctx, formula),
            |b, (ctx, formula)| {
                b.iter_batched(
                    || ctx.clone(),
                    |mut ctx| {
                        let opts = CheckOptions {
                            memory: MemoryModel::Conservative,
                            ..CheckOptions::default()
                        };
                        let report = check_validity(&mut ctx, *formula, &opts);
                        assert!(report.outcome.is_valid());
                    },
                    criterion::BatchSize::LargeInput,
                );
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_sat);
criterion_main!(benches);
