//! Criterion bench for Table 4: the rewriting rules + conservative
//! translation, across reorder-buffer sizes. Compare with
//! `table2_pe_only`: the same sizes that wall the PE-only flow are
//! millisecond-scale here.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use evc::check::{check_validity, CheckOptions};
use evc::mem::MemoryModel;
use evc::rewrite::{rewrite_correctness, RewriteInput, RewriteOptions};
use uarch::{correctness, Config};

fn bench_rewrite(c: &mut Criterion) {
    let mut group = c.benchmark_group("table4_rewrite_translate");
    group.sample_size(10);
    for (size, width) in [(8usize, 2usize), (16, 4), (32, 4), (64, 4), (128, 4)] {
        let config = Config::new(size, width).expect("config");
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("rob{size}xw{width}")),
            &config,
            |b, config| {
                b.iter(|| {
                    let mut bundle = correctness::generate(config).expect("generate");
                    let input = RewriteInput {
                        formula: bundle.formula,
                        rf_impl: bundle.rf_impl,
                        rf_spec0: bundle.rf_spec[0],
                    };
                    let outcome =
                        rewrite_correctness(&mut bundle.ctx, &input, &RewriteOptions::default())
                            .expect("rewrite");
                    let opts = CheckOptions {
                        memory: MemoryModel::Conservative,
                        ..CheckOptions::default()
                    };
                    let report = check_validity(&mut bundle.ctx, outcome.formula, &opts);
                    assert!(report.outcome.is_valid());
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_rewrite);
criterion_main!(benches);
