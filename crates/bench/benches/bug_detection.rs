//! Criterion bench for the buggy-variant experiment: time for the
//! rewriting rules to localize an injected forwarding defect, vs verifying
//! the correct variant of the same configuration.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use evc::rewrite::{rewrite_correctness, RewriteError, RewriteInput, RewriteOptions};
use uarch::{correctness, BugSpec, Config, Operand};

fn bench_bug_detection(c: &mut Criterion) {
    let mut group = c.benchmark_group("bug_detection");
    group.sample_size(10);
    for (size, width, slice) in [(16usize, 2usize, 10usize), (64, 4, 40)] {
        let config = Config::new(size, width).expect("config");
        let bug = BugSpec::ForwardingIgnoresValidResult {
            slice,
            operand: Operand::Src2,
        };
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("buggy_rob{size}xw{width}_s{slice}")),
            &(config, bug, slice),
            |b, (config, bug, slice)| {
                b.iter(|| {
                    let mut bundle =
                        correctness::generate_with(config, Some(*bug), tlsim::EvalStrategy::Lazy)
                            .expect("generate");
                    let input = RewriteInput {
                        formula: bundle.formula,
                        rf_impl: bundle.rf_impl,
                        rf_spec0: bundle.rf_spec[0],
                    };
                    match rewrite_correctness(&mut bundle.ctx, &input, &RewriteOptions::default()) {
                        Err(RewriteError::Slice { slice: got, .. }) => assert_eq!(got, *slice),
                        other => panic!("expected diagnosis, got {other:?}"),
                    }
                });
            },
        );
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("correct_rob{size}xw{width}")),
            &config,
            |b, config| {
                b.iter(|| {
                    let mut bundle = correctness::generate(config).expect("generate");
                    let input = RewriteInput {
                        formula: bundle.formula,
                        rf_impl: bundle.rf_impl,
                        rf_spec0: bundle.rf_spec[0],
                    };
                    rewrite_correctness(&mut bundle.ctx, &input, &RewriteOptions::default())
                        .expect("rewrite");
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_bug_detection);
criterion_main!(benches);
