//! Criterion bench for Table 2: the Positive-Equality-only flow
//! (translation + SAT). The blow-up with size is the point: compare the
//! per-size times to see the wall the paper hits at 16 entries.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use evc::check::{check_validity, CheckOptions};
use evc::mem::MemoryModel;
use uarch::{correctness, Config};

fn bench_pe_only(c: &mut Criterion) {
    let mut group = c.benchmark_group("table2_pe_only");
    group.sample_size(10);
    for (size, width) in [(2usize, 1usize), (2, 2), (4, 1), (4, 2)] {
        let config = Config::new(size, width).expect("config");
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("rob{size}xw{width}")),
            &config,
            |b, config| {
                b.iter(|| {
                    let mut bundle = correctness::generate(config).expect("generate");
                    let opts = CheckOptions {
                        memory: MemoryModel::Forwarding,
                        ..CheckOptions::default()
                    };
                    let report = check_validity(&mut bundle.ctx, bundle.formula, &opts);
                    assert!(report.outcome.is_valid());
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_pe_only);
criterion_main!(benches);
