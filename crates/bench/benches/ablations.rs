//! Ablation benches for the design choices DESIGN.md calls out:
//!
//! - cone-of-influence (lazy) vs eager symbolic evaluation (Sect. 7's
//!   TLSim optimization);
//! - transitivity constraints on/off in the `e_ij` encoding;
//! - Tseitin full vs polarity-aware definitions;
//! - forwarding vs conservative memory model on the *rewritten* formula
//!   (both are sound there; the conservative one is what makes Table 5
//!   size-independent).

use criterion::{criterion_group, criterion_main, Criterion};
use evc::check::{check_validity, CheckOptions};
use evc::mem::MemoryModel;
use evc::rewrite::{rewrite_correctness, RewriteInput, RewriteOptions};
use tlsim::EvalStrategy;
use uarch::{correctness, Config};

fn bench_coi(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_coi");
    group.sample_size(10);
    let config = Config::new(32, 4).expect("config");
    group.bench_function("lazy", |b| {
        b.iter(|| correctness::generate_with(&config, None, EvalStrategy::Lazy).expect("generate"));
    });
    group.bench_function("eager", |b| {
        b.iter(|| {
            correctness::generate_with(&config, None, EvalStrategy::Eager).expect("generate")
        });
    });
    group.finish();
}

fn bench_transitivity(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_transitivity");
    group.sample_size(10);
    let config = Config::new(4, 2).expect("config");
    for (label, transitivity) in [("on", true), ("off", false)] {
        group.bench_function(label, |b| {
            b.iter(|| {
                let mut bundle = correctness::generate(&config).expect("generate");
                let opts = CheckOptions {
                    memory: MemoryModel::Forwarding,
                    transitivity,
                    ..CheckOptions::default()
                };
                let report = check_validity(&mut bundle.ctx, bundle.formula, &opts);
                // With transitivity the formula verifies; without it the
                // check may spuriously falsify — the ablation shows the
                // constraints are load-bearing, not just their cost.
                if transitivity {
                    assert!(report.outcome.is_valid());
                }
            });
        });
    }
    group.finish();
}

fn bench_tseitin(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_tseitin");
    group.sample_size(10);
    let config = Config::new(4, 2).expect("config");
    for (label, mode) in [
        ("full", sat::Mode::Full),
        ("polarity_aware", sat::Mode::PolarityAware),
    ] {
        group.bench_function(label, |b| {
            b.iter(|| {
                let mut bundle = correctness::generate(&config).expect("generate");
                let opts = CheckOptions {
                    memory: MemoryModel::Forwarding,
                    tseitin: mode,
                    ..CheckOptions::default()
                };
                let report = check_validity(&mut bundle.ctx, bundle.formula, &opts);
                assert!(report.outcome.is_valid());
            });
        });
    }
    group.finish();
}

fn bench_memory_model(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_memory_model");
    group.sample_size(10);
    let config = Config::new(16, 4).expect("config");
    for (label, memory) in [
        ("conservative", MemoryModel::Conservative),
        ("forwarding", MemoryModel::Forwarding),
    ] {
        group.bench_function(label, |b| {
            b.iter(|| {
                let mut bundle = correctness::generate(&config).expect("generate");
                let input = RewriteInput {
                    formula: bundle.formula,
                    rf_impl: bundle.rf_impl,
                    rf_spec0: bundle.rf_spec[0],
                };
                let outcome =
                    rewrite_correctness(&mut bundle.ctx, &input, &RewriteOptions::default())
                        .expect("rewrite");
                let opts = CheckOptions {
                    memory,
                    ..CheckOptions::default()
                };
                let report = check_validity(&mut bundle.ctx, outcome.formula, &opts);
                assert!(report.outcome.is_valid());
            });
        });
    }
    group.finish();
}

fn bench_uf_scheme(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_uf_scheme");
    group.sample_size(10);
    let config = Config::new(3, 1).expect("config");
    for (label, scheme) in [
        ("nested_ite", evc::check::UfScheme::NestedIte),
        ("ackermann", evc::check::UfScheme::Ackermann),
    ] {
        group.bench_function(label, |b| {
            b.iter(|| {
                let mut bundle = correctness::generate(&config).expect("generate");
                let opts = CheckOptions {
                    memory: MemoryModel::Forwarding,
                    uf_scheme: scheme,
                    ..CheckOptions::default()
                };
                let report = check_validity(&mut bundle.ctx, bundle.formula, &opts);
                assert!(report.outcome.is_valid());
            });
        });
    }
    group.finish();
}

fn bench_structural_r5(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_structural_r5");
    group.sample_size(10);
    let config = Config::new(8, 2).expect("config");
    for (label, structural) in [("structural", true), ("semantic_only", false)] {
        group.bench_function(label, |b| {
            b.iter(|| {
                let mut bundle = correctness::generate(&config).expect("generate");
                let input = RewriteInput {
                    formula: bundle.formula,
                    rf_impl: bundle.rf_impl,
                    rf_spec0: bundle.rf_spec[0],
                };
                let options = RewriteOptions {
                    structural_forwarding: structural,
                    ..RewriteOptions::default()
                };
                rewrite_correctness(&mut bundle.ctx, &input, &options).expect("rewrite");
            });
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_coi,
    bench_transitivity,
    bench_tseitin,
    bench_memory_model,
    bench_uf_scheme,
    bench_structural_r5
);
criterion_main!(benches);
