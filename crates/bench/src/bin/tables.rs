//! Regenerates the paper's evaluation tables.
//!
//! ```text
//! cargo run --release -p bench --bin tables -- all
//! cargo run --release -p bench --bin tables -- table1 --max-size 512
//! cargo run --release -p bench --bin tables -- bug
//! ```
//!
//! Defaults keep the sweep laptop-scale; raise `--max-size`/`--max-width`
//! to push toward the paper's 1,500 × 128 flagship configuration.

use bench::profile::{bench5_json, overhead_guard, profile_sweep, render_profile};
use bench::reuse::{bench6_json, render_reuse, sweep_reuse};
use bench::{
    bug_experiment, render_markdown, table1, table2, table3, table4, table5, SweepOptions,
};

fn usage() -> ! {
    eprintln!(
        "usage: tables <table1|table2|table3|table4|table5|bug|all|profile|overhead|sweep-reuse> \
         [--max-size N] [--max-width K] [--sat-budget SECONDS] [--workers N] \
         [--out PATH] [--threshold RATIO] [--iterations N]"
    );
    std::process::exit(2)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        usage();
    }
    let which = args[0].clone();
    let mut opts = SweepOptions::default();
    let mut out: Option<String> = None;
    // Per-subcommand defaults: overhead guards a 1.5x slowdown ceiling,
    // sweep-reuse a 0.60 warm/cold ratio ceiling.
    let mut threshold: Option<f64> = None;
    let mut iterations = 5usize;
    let mut it = args[1..].iter();
    while let Some(flag) = it.next() {
        let value = it.next().unwrap_or_else(|| usage());
        match flag.as_str() {
            "--max-size" => opts.max_size = value.parse().unwrap_or_else(|_| usage()),
            "--max-width" => opts.max_width = value.parse().unwrap_or_else(|_| usage()),
            "--sat-budget" => opts.sat_budget = value.parse().unwrap_or_else(|_| usage()),
            // Parallel cells trade per-cell CPU-time fidelity for
            // wall-clock turnaround; counts and verdicts are unaffected.
            "--workers" => opts.workers = value.parse().unwrap_or_else(|_| usage()),
            "--out" => out = Some(value.clone()),
            "--threshold" => threshold = Some(value.parse().unwrap_or_else(|_| usage())),
            "--iterations" => iterations = value.parse().unwrap_or_else(|_| usage()),
            _ => usage(),
        }
    }

    let run_bug = |opts: &SweepOptions| {
        println!(
            "### Buggy variant (Sect. 7.2) — forwarding bug, operand 2, slice 72, rob128xw4\n"
        );
        let exp = bug_experiment(opts);
        println!("| quantity | value |");
        println!("|---|---|");
        println!(
            "| rewriting rules: diagnosed slice | {} |",
            exp.diagnosed_slice
                .map_or("NOT FOUND".to_owned(), |s| s.to_string())
        );
        println!(
            "| rewriting rules: time to diagnosis [s] | {:.1} |",
            exp.rewriting_time.as_secs_f64()
        );
        println!(
            "| rewriting rules: correct variant verified [s] | {:.1} |",
            exp.correct_time.as_secs_f64()
        );
        println!("| Positive Equality only | {} |", exp.pe_only);
        println!();
    };

    match which.as_str() {
        "table1" => print!("{}", render_markdown(&table1(&opts))),
        "table2" => print!("{}", render_markdown(&table2(&opts))),
        "table3" => print!("{}", render_markdown(&table3(&opts))),
        "table4" => print!("{}", render_markdown(&table4(&opts))),
        "table5" => print!("{}", render_markdown(&table5(&opts))),
        "bug" => run_bug(&opts),
        "profile" => {
            let runs = profile_sweep(&opts, iterations.max(1));
            for run in &runs {
                println!("{}", render_profile(run));
            }
            if let Some(last) = runs.last() {
                println!(
                    "```\nflamegraph — rob{}xw{} {}\n{}```\n",
                    last.rob_size, last.issue_width, last.strategy, last.flamegraph
                );
            }
            if let Some(path) = &out {
                let text = format!("{}\n", bench5_json(&runs));
                std::fs::write(path, text).unwrap_or_else(|e| {
                    eprintln!("tables: cannot write {path}: {e}");
                    std::process::exit(1);
                });
                eprintln!("tables: profile written to {path}");
            }
        }
        "overhead" => {
            let report = overhead_guard(threshold.unwrap_or(1.5), iterations.max(1));
            println!(
                "collectors disabled: {:.4}s median  enabled: {:.4}s median  \
                 budget: {:.2}x + {:.0}ms",
                report.disabled_secs,
                report.enabled_secs,
                report.threshold,
                report.slack_secs * 1000.0,
            );
            if !report.within_budget {
                eprintln!("tables: collector overhead exceeds budget");
                std::process::exit(1);
            }
            println!("overhead guard: within budget");
        }
        "sweep-reuse" => {
            let report = sweep_reuse(&opts, threshold.unwrap_or(0.60), iterations.max(1));
            print!("{}", render_reuse(&report));
            if let Some(path) = &out {
                let text = format!("{}\n", bench6_json(&report));
                std::fs::write(path, text).unwrap_or_else(|e| {
                    eprintln!("tables: cannot write {path}: {e}");
                    std::process::exit(1);
                });
                eprintln!("tables: sweep-reuse report written to {path}");
            }
            if !report.within_budget {
                eprintln!(
                    "tables: warm sweep did not reuse enough (ratio {:.2} > ceiling {:.2}, \
                     or a warm result diverged)",
                    report.ratio, report.threshold
                );
                std::process::exit(1);
            }
            println!("sweep-reuse guard: within budget");
        }
        "all" => {
            println!("{}", render_markdown(&table1(&opts)));
            println!("{}", render_markdown(&table2(&opts)));
            println!("{}", render_markdown(&table3(&opts)));
            println!("{}", render_markdown(&table4(&opts)));
            println!("{}", render_markdown(&table5(&opts)));
            run_bug(&opts);
        }
        _ => usage(),
    }
}
