//! Cold-vs-warm sweep benchmark for the obligation memo store and the
//! machine-readable `BENCH_6.json` artifact.
//!
//! The `tables sweep-reuse` subcommand runs the Table 1 configurations
//! twice against one shared [`rob_verify::memo`] store: the first (cold)
//! pass pays full price and populates the store, the second (warm) pass
//! replays obligation discharges, PE classifications, and main-solve
//! verdicts out of it. The report compares total wall times, checks that
//! every warm verdict and statistic is field-for-field identical to its
//! cold counterpart, and enforces a warm/cold ratio ceiling (the CI
//! guard).

use std::time::Instant;

use campaign::json::Json;
use rob_verify::memo::MemoSnapshot;
use rob_verify::{memo, Config, Strategy, Verification, Verifier};
use sat::Limits;

use crate::{size_ladder, width_ladder, SweepOptions};

/// Schema identifier stamped into `BENCH_6.json`; bump when the layout
/// changes.
pub const BENCH6_SCHEMA: &str = "rob-bench-sweep-reuse/v1";

/// One configuration measured cold and warm.
#[derive(Debug, Clone)]
pub struct ReuseCell {
    /// Reorder-buffer size.
    pub rob_size: usize,
    /// Issue/retire width.
    pub issue_width: usize,
    /// Verdict label (identical in both passes or the cell is flagged).
    pub verdict: String,
    /// Cold (populating) pass wall time, seconds.
    pub cold_secs: f64,
    /// Warm (replaying) pass wall time, seconds.
    pub warm_secs: f64,
    /// Whether the warm verdict and statistics equalled the cold ones
    /// field for field.
    pub identical: bool,
}

/// The whole cold-vs-warm sweep.
#[derive(Debug, Clone)]
pub struct ReuseReport {
    /// Per-configuration measurements.
    pub cells: Vec<ReuseCell>,
    /// Summed cold wall time, seconds.
    pub cold_total_secs: f64,
    /// Summed warm wall time, seconds.
    pub warm_total_secs: f64,
    /// `warm_total / cold_total`.
    pub ratio: f64,
    /// The ratio ceiling the guard enforced.
    pub threshold: f64,
    /// Whether the warm pass beat the ceiling AND every cell was
    /// field-for-field identical.
    pub within_budget: bool,
    /// Store traffic after both passes.
    pub memo: MemoSnapshot,
}

/// Fastest sample — the standard low-noise benchmark statistic: every
/// slowdown source (scheduler, frequency scaling, page faults) only
/// ever adds time, so the minimum is the best estimate of intrinsic
/// cost.
fn fastest(samples: &[f64]) -> f64 {
    samples.iter().copied().fold(f64::INFINITY, f64::min)
}

/// Runs the cold-vs-warm sweep serially (this is a timing benchmark;
/// parallel cells would share cores and skew the ratio).
///
/// Each pass is sampled `iterations` times and reported as the
/// per-cell fastest sample, so sub-millisecond cells don't make the
/// guard flaky. Every iteration pairs a cold sweep on its own fresh
/// store (a reused store would not be cold) with a warm sweep on that
/// store.
pub fn sweep_reuse(opts: &SweepOptions, threshold: f64, iterations: usize) -> ReuseReport {
    let iterations = iterations.max(1);
    let limits = Limits {
        max_seconds: Some(opts.sat_budget),
        ..Limits::none()
    };
    let pairs: Vec<(usize, usize)> = size_ladder(opts)
        .into_iter()
        .flat_map(|size| {
            width_ladder(opts)
                .into_iter()
                .filter(move |&width| width <= size)
                .map(move |width| (size, width))
        })
        .collect();

    let run = |store: &memo::MemoHandle, size: usize, width: usize| {
        let config = Config::new(size, width).ok()?;
        let verifier = Verifier::new(config)
            .strategy(Strategy::default())
            .sat_limits(limits)
            .audit(false)
            .memo(store.clone());
        let started = Instant::now();
        let verification = verifier.run().ok()?;
        Some((started.elapsed().as_secs_f64(), verification))
    };

    // Each iteration is one cold sweep on a fresh store immediately
    // followed by one warm sweep on that store. Interleaving the two
    // passes keeps slow machine drift (frequency scaling, background
    // load) from landing on only one side of the ratio.
    let mut cold_samples: Vec<Vec<f64>> = vec![Vec::new(); pairs.len()];
    let mut cold_results: Vec<Option<Verification>> = vec![None; pairs.len()];
    let mut warm_samples: Vec<Vec<f64>> = vec![Vec::new(); pairs.len()];
    let mut warm_results: Vec<Option<Verification>> = vec![None; pairs.len()];
    let mut store = rob_verify::memo_handle();
    for _ in 0..iterations {
        store = rob_verify::memo_handle();
        for (i, &(size, width)) in pairs.iter().enumerate() {
            if let Some((secs, v)) = run(&store, size, width) {
                cold_samples[i].push(secs);
                cold_results[i] = Some(v);
            }
        }
        for (i, &(size, width)) in pairs.iter().enumerate() {
            if let Some((secs, v)) = run(&store, size, width) {
                warm_samples[i].push(secs);
                warm_results[i] = Some(v);
            }
        }
    }

    let mut cells = Vec::new();
    for (i, &(size, width)) in pairs.iter().enumerate() {
        let (Some(cold_v), Some(warm_v)) = (&cold_results[i], &warm_results[i]) else {
            continue;
        };
        cells.push(ReuseCell {
            rob_size: size,
            issue_width: width,
            verdict: cold_v.verdict.label().to_owned(),
            cold_secs: fastest(&cold_samples[i]),
            warm_secs: fastest(&warm_samples[i]),
            identical: warm_v.verdict == cold_v.verdict && warm_v.stats == cold_v.stats,
        });
    }

    let cold_total_secs: f64 = cells.iter().map(|c| c.cold_secs).sum();
    let warm_total_secs: f64 = cells.iter().map(|c| c.warm_secs).sum();
    let ratio = if cold_total_secs > 0.0 {
        warm_total_secs / cold_total_secs
    } else {
        1.0
    };
    let all_identical = !cells.is_empty() && cells.iter().all(|c| c.identical);
    ReuseReport {
        cells,
        cold_total_secs,
        warm_total_secs,
        ratio,
        threshold,
        within_budget: all_identical && ratio <= threshold,
        memo: store.stats(),
    }
}

/// Renders the sweep as a markdown table plus the guard verdict line.
pub fn render_reuse(report: &ReuseReport) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(out, "### Sweep reuse — cold vs warm (shared memo store)\n");
    let _ = writeln!(
        out,
        "| config | verdict | cold [s] | warm [s] | warm/cold |"
    );
    let _ = writeln!(out, "|---|---|---|---|---|");
    for cell in &report.cells {
        let _ = writeln!(
            out,
            "| rob{}xw{} | {} | {:.3} | {:.3} | {:.2} |",
            cell.rob_size,
            cell.issue_width,
            cell.verdict,
            cell.cold_secs,
            cell.warm_secs,
            if cell.cold_secs > 0.0 {
                cell.warm_secs / cell.cold_secs
            } else {
                1.0
            },
        );
    }
    let _ = writeln!(
        out,
        "\ntotal: cold {:.3}s  warm {:.3}s  ratio {:.2} (ceiling {:.2})  \
         memo {} hits / {} misses ({:.1}% hit rate)",
        report.cold_total_secs,
        report.warm_total_secs,
        report.ratio,
        report.threshold,
        report.memo.hits,
        report.memo.misses,
        100.0 * report.memo.hit_rate(),
    );
    out
}

/// Serializes the sweep as the `BENCH_6.json` document.
pub fn bench6_json(report: &ReuseReport) -> Json {
    let cells: Vec<Json> = report
        .cells
        .iter()
        .map(|cell| {
            Json::obj([
                ("rob_size", Json::from(cell.rob_size)),
                ("issue_width", Json::from(cell.issue_width)),
                ("verdict", Json::str(cell.verdict.clone())),
                ("cold_secs", Json::Num(cell.cold_secs)),
                ("warm_secs", Json::Num(cell.warm_secs)),
                ("identical", Json::Bool(cell.identical)),
            ])
        })
        .collect();
    let kind = |i: usize| {
        let (hits, misses) = report.memo.by_kind[i];
        Json::obj([("hits", Json::from(hits)), ("misses", Json::from(misses))])
    };
    Json::obj([
        ("schema", Json::str(BENCH6_SCHEMA)),
        ("cells", Json::Arr(cells)),
        ("cold_total_secs", Json::Num(report.cold_total_secs)),
        ("warm_total_secs", Json::Num(report.warm_total_secs)),
        ("warm_cold_ratio", Json::Num(report.ratio)),
        ("threshold", Json::Num(report.threshold)),
        ("within_budget", Json::Bool(report.within_budget)),
        (
            "memo",
            Json::obj([
                ("hits", Json::from(report.memo.hits)),
                ("misses", Json::from(report.memo.misses)),
                ("entries", Json::from(report.memo.entries)),
                ("hit_rate", Json::Num(report.memo.hit_rate())),
                ("obligation", kind(0)),
                ("classes", kind(1)),
                ("solve", kind(2)),
                ("rewrite", kind(3)),
            ]),
        ),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reuse_sweep_is_identical_and_parses() {
        let opts = SweepOptions {
            max_size: 4,
            max_width: 2,
            ..SweepOptions::default()
        };
        let report = sweep_reuse(&opts, 1.0, 1);
        assert!(!report.cells.is_empty());
        for cell in &report.cells {
            assert!(cell.identical, "warm differed at rob{}", cell.rob_size);
            assert_eq!(cell.verdict, "verified");
        }
        assert!(report.memo.hits > 0, "warm pass hit nothing");

        let text = bench6_json(&report).to_string();
        let doc = campaign::json::parse(&text).expect("valid JSON");
        assert_eq!(
            doc.get("schema").and_then(Json::as_str),
            Some(BENCH6_SCHEMA)
        );
        for key in [
            "cells",
            "cold_total_secs",
            "warm_total_secs",
            "warm_cold_ratio",
            "within_budget",
            "memo",
        ] {
            assert!(doc.get(key).is_some(), "missing {key}");
        }
        let rendered = render_reuse(&report);
        assert!(rendered.contains("hit rate"), "{rendered}");
    }
}
