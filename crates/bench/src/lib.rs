//! Shared sweep logic for regenerating the paper's evaluation tables.
//!
//! Each `table*` function returns structured rows; [`render_markdown`]
//! prints them in the row/column layout of the paper. The `tables` binary
//! drives everything from the command line; the Criterion benches reuse the
//! same per-cell workloads.

pub mod profile;
pub mod reuse;

use std::time::{Duration, Instant};

use evc::check::{check_validity, CheckOptions, CheckOutcome};
use evc::mem::MemoryModel;
use evc::rewrite::{rewrite_correctness, RewriteError, RewriteInput, RewriteOptions};
use sat::Limits;
use uarch::correctness::CorrectnessBundle;
use uarch::{correctness, BugSpec, Config, Operand};

/// A single cell of a sweep table.
#[derive(Debug, Clone, PartialEq)]
pub enum Cell {
    /// Measured wall-clock seconds.
    Seconds(f64),
    /// A count (variables, clauses, ...).
    Count(usize),
    /// The configuration is impossible (width exceeds size) — the paper's
    /// dashes.
    Dash,
    /// The budget was exhausted — the paper's out-of-memory cells.
    OverBudget,
}

impl std::fmt::Display for Cell {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Cell::Seconds(s) if *s >= 100.0 => write!(f, "{s:.0}"),
            Cell::Seconds(s) if *s >= 1.0 => write!(f, "{s:.1}"),
            Cell::Seconds(s) => write!(f, "{s:.3}"),
            Cell::Count(n) => write!(f, "{n}"),
            Cell::Dash => write!(f, "—"),
            Cell::OverBudget => write!(f, ">budget"),
        }
    }
}

/// A sweep table: row labels (reorder-buffer sizes), column labels
/// (issue/retire widths), and cells.
#[derive(Debug, Clone)]
pub struct Table {
    /// Table title.
    pub title: String,
    /// Label of the row-header column.
    pub row_header: String,
    /// Column labels.
    pub columns: Vec<String>,
    /// `(row label, cells)` pairs.
    pub rows: Vec<(String, Vec<Cell>)>,
}

/// Renders a [`Table`] as GitHub-flavored markdown.
pub fn render_markdown(table: &Table) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(out, "### {}\n", table.title);
    let _ = write!(out, "| {} |", table.row_header);
    for c in &table.columns {
        let _ = write!(out, " {c} |");
    }
    let _ = writeln!(out);
    let _ = write!(out, "|---|");
    for _ in &table.columns {
        let _ = write!(out, "---|");
    }
    let _ = writeln!(out);
    for (label, cells) in &table.rows {
        let _ = write!(out, "| {label} |");
        for cell in cells {
            let _ = write!(out, " {cell} |");
        }
        let _ = writeln!(out);
    }
    out
}

/// Sweep bounds and budgets.
#[derive(Debug, Clone, Copy)]
pub struct SweepOptions {
    /// Largest reorder-buffer size to include.
    pub max_size: usize,
    /// Largest issue/retire width to include.
    pub max_width: usize,
    /// SAT wall-clock budget per cell, seconds.
    pub sat_budget: f64,
    /// Translation node budget per cell.
    pub node_budget: usize,
    /// Worker threads for computing independent cells. Defaults to 1 so
    /// per-cell CPU times stay comparable to the paper's serial runs;
    /// raise it when only the table *values* (counts, verdicts) matter
    /// or wall-clock turnaround is the priority.
    pub workers: usize,
}

impl Default for SweepOptions {
    fn default() -> Self {
        SweepOptions {
            max_size: 256,
            max_width: 128,
            sat_budget: 60.0,
            node_budget: 6_000_000,
            workers: 1,
        }
    }
}

/// Computes independent table cells on the campaign crate's
/// work-stealing pool.
///
/// Returns one entry per input pair, in input order. Cells run with
/// panic isolation: a crashing cell becomes `None` (rendered as a dash)
/// instead of tearing down the whole sweep.
pub fn parallel_cells<C, F>(pairs: Vec<(usize, usize)>, workers: usize, cell: F) -> Vec<Option<C>>
where
    C: Send + 'static,
    F: Fn(usize, usize) -> Option<C> + Send + Sync + 'static,
{
    use campaign::pool::{self, CancelToken, ExecOutcome, PoolOptions};
    let options = PoolOptions {
        workers: workers.max(1),
        timeout: None,
        retries: 0,
        ..PoolOptions::default()
    };
    pool::execute(
        pairs,
        &options,
        &CancelToken::new(),
        std::sync::Arc::new(
            move |&(size, width): &(usize, usize), _cancel: &CancelToken| cell(size, width),
        ),
        &(),
    )
    .into_iter()
    .map(|result| match result.outcome {
        ExecOutcome::Done(value) => value,
        _ => None,
    })
    .collect()
}

/// The paper's size and width ladders, clipped to the sweep bounds.
pub fn size_ladder(opts: &SweepOptions) -> Vec<usize> {
    [2usize, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 1250, 1500]
        .into_iter()
        .filter(|&s| s <= opts.max_size)
        .collect()
}

/// The paper's width ladder, clipped to the sweep bounds.
pub fn width_ladder(opts: &SweepOptions) -> Vec<usize> {
    [1usize, 2, 4, 8, 16, 32, 64, 128]
        .into_iter()
        .filter(|&w| w <= opts.max_width)
        .collect()
}

fn secs(d: Duration) -> Cell {
    Cell::Seconds(d.as_secs_f64())
}

/// One cell of Table 1: CPU time for symbolically simulating the
/// implementation and the specification when generating the EUFM
/// correctness formula.
pub fn generation_cell(size: usize, width: usize) -> Option<(Duration, CorrectnessBundle)> {
    let config = Config::new(size, width).ok()?;
    let t = Instant::now();
    let bundle = correctness::generate(&config).ok()?;
    Some((t.elapsed(), bundle))
}

/// Table 1: formula-generation (symbolic simulation) times.
pub fn table1(opts: &SweepOptions) -> Table {
    let sizes = size_ladder(opts);
    let widths = width_ladder(opts);
    let pairs: Vec<(usize, usize)> = sizes
        .iter()
        .flat_map(|&s| widths.iter().map(move |&w| (s, w)))
        .collect();
    let computed = parallel_cells(pairs, opts.workers, |size, width| {
        generation_cell(size, width).map(|(t, _)| t)
    });
    let mut rows = Vec::new();
    let mut iter = computed.into_iter();
    for size in &sizes {
        let cells = widths
            .iter()
            .map(|_| match iter.next().expect("cell per pair") {
                Some(t) => secs(t),
                None => Cell::Dash,
            })
            .collect();
        rows.push((size.to_string(), cells));
    }
    Table {
        title: "Table 1 — CPU time [s] for symbolically simulating the out-of-order \
                implementation and the specification, generating the EUFM correctness formula"
            .to_owned(),
        row_header: "ROB size \\ width".to_owned(),
        columns: width_ladder(opts).iter().map(ToString::to_string).collect(),
        rows,
    }
}

/// The result of checking one configuration with the PE-only flow.
pub struct PeOnlyCell {
    /// Wall-clock time of the SAT run (the paper's Table 2 number).
    pub sat_time: Duration,
    /// Translation time.
    pub translate_time: Duration,
    /// Statistics (the paper's Table 3 rows).
    pub stats: evc::check::TranslationStats,
    /// Whether the check completed (false = budget exhausted).
    pub completed: bool,
    /// Whether the design verified.
    pub valid: bool,
}

/// One cell of Tables 2/3: Positive Equality only.
pub fn pe_only_cell(size: usize, width: usize, opts: &SweepOptions) -> Option<PeOnlyCell> {
    let config = Config::new(size, width).ok()?;
    let mut bundle = correctness::generate(&config).ok()?;
    let check = CheckOptions {
        memory: MemoryModel::Forwarding,
        max_nodes: opts.node_budget,
        sat_limits: Limits {
            max_seconds: Some(opts.sat_budget),
            ..Limits::none()
        },
        ..CheckOptions::default()
    };
    let report = check_validity(&mut bundle.ctx, bundle.formula, &check);
    Some(PeOnlyCell {
        sat_time: report.sat_time,
        translate_time: report.translate_time,
        stats: report.stats,
        completed: !matches!(report.outcome, CheckOutcome::Unknown(_)),
        valid: report.outcome.is_valid(),
    })
}

/// Table 2: SAT-checking times with Positive Equality only.
pub fn table2(opts: &SweepOptions) -> Table {
    let sizes: Vec<usize> = size_ladder(opts).into_iter().filter(|&s| s <= 16).collect();
    let widths: Vec<usize> = width_ladder(opts).into_iter().filter(|&w| w <= 8).collect();
    let mut rows = Vec::new();
    let mut dead_sizes = false;
    // Rows stay sequential so the over-budget cascade can skip larger
    // sizes entirely; the widths within a row are independent and run
    // on the pool.
    for size in sizes {
        let cells: Vec<Cell> = if dead_sizes {
            widths
                .iter()
                .map(|&w| {
                    if w > size {
                        Cell::Dash
                    } else {
                        Cell::OverBudget
                    }
                })
                .collect()
        } else {
            let sweep = *opts;
            let pairs: Vec<(usize, usize)> = widths.iter().map(|&w| (size, w)).collect();
            parallel_cells(pairs, opts.workers, move |size, width| {
                if width > size {
                    return None;
                }
                pe_only_cell(size, width, &sweep)
            })
            .into_iter()
            .map(|computed| match computed {
                Some(cell) if cell.completed => secs(cell.sat_time),
                Some(_) => Cell::OverBudget,
                None => Cell::Dash,
            })
            .collect()
        };
        // Once every width blows the budget, larger sizes only get worse
        // (mirrors the paper stopping at 16 entries).
        if cells
            .iter()
            .all(|c| matches!(c, Cell::OverBudget | Cell::Dash))
        {
            dead_sizes = true;
        }
        rows.push((size.to_string(), cells));
    }
    Table {
        title: "Table 2 — CPU time [s] for SAT-checking the CNF (processor correctness) \
                with Positive Equality only"
            .to_owned(),
        row_header: "ROB size \\ width".to_owned(),
        columns: widths.iter().map(ToString::to_string).collect(),
        rows,
    }
}

/// Table 3: CNF statistics at 8 reorder-buffer entries, PE only.
pub fn table3(opts: &SweepOptions) -> Table {
    let widths: Vec<usize> = [1usize, 2, 4, 8].into_iter().collect();
    let sweep = *opts;
    let computed = parallel_cells(
        widths.iter().map(|&w| (8usize, w)).collect(),
        opts.workers,
        move |size, width| pe_only_cell(size, width, &sweep),
    );
    let mut eij = Vec::new();
    let mut other = Vec::new();
    let mut total = Vec::new();
    let mut vars = Vec::new();
    let mut clauses = Vec::new();
    let mut time = Vec::new();
    for cell in computed {
        match cell {
            Some(cell) => {
                eij.push(Cell::Count(cell.stats.eij_vars));
                other.push(Cell::Count(cell.stats.other_vars));
                total.push(Cell::Count(cell.stats.total_primary()));
                vars.push(Cell::Count(cell.stats.cnf_vars));
                clauses.push(Cell::Count(cell.stats.cnf_clauses));
                time.push(if cell.completed {
                    secs(cell.sat_time)
                } else {
                    Cell::OverBudget
                });
            }
            None => {
                for v in [
                    &mut eij,
                    &mut other,
                    &mut total,
                    &mut vars,
                    &mut clauses,
                    &mut time,
                ] {
                    v.push(Cell::Dash);
                }
            }
        }
    }
    Table {
        title: "Table 3 — CNF statistics for models with 8 reorder-buffer entries, \
                Positive Equality only"
            .to_owned(),
        row_header: "size 8, width →".to_owned(),
        columns: widths.iter().map(ToString::to_string).collect(),
        rows: vec![
            ("e_ij primary inputs".to_owned(), eij),
            ("other primary inputs".to_owned(), other),
            ("total primary inputs".to_owned(), total),
            ("CNF variables".to_owned(), vars),
            ("CNF clauses".to_owned(), clauses),
            ("SAT CPU time [s]".to_owned(), time),
        ],
    }
}

/// The result of the rewriting + Positive Equality flow on one cell.
pub struct RewriteCell {
    /// Rewriting + translation time (the paper's Table 4 number).
    pub translate_time: Duration,
    /// SAT time (part of the paper's Table 5).
    pub sat_time: Duration,
    /// Statistics (the paper's Table 5 rows).
    pub stats: evc::check::TranslationStats,
    /// Whether the design verified.
    pub valid: bool,
}

/// One cell of Tables 4/5: rewriting rules + Positive Equality.
pub fn rewrite_cell(size: usize, width: usize, opts: &SweepOptions) -> Option<RewriteCell> {
    let config = Config::new(size, width).ok()?;
    let mut bundle = correctness::generate(&config).ok()?;
    let t = Instant::now();
    let input = RewriteInput {
        formula: bundle.formula,
        rf_impl: bundle.rf_impl,
        rf_spec0: bundle.rf_spec[0],
    };
    let outcome = rewrite_correctness(&mut bundle.ctx, &input, &RewriteOptions::default()).ok()?;
    let check = CheckOptions {
        memory: MemoryModel::Conservative,
        sat_limits: Limits {
            max_seconds: Some(opts.sat_budget),
            ..Limits::none()
        },
        ..CheckOptions::default()
    };
    let report = check_validity(&mut bundle.ctx, outcome.formula, &check);
    Some(RewriteCell {
        translate_time: t.elapsed() - report.sat_time + report.translate_time,
        sat_time: report.sat_time,
        stats: report.stats,
        valid: report.outcome.is_valid(),
    })
}

/// Table 4: EUFM-to-Boolean translation times with rewriting rules +
/// Positive Equality.
pub fn table4(opts: &SweepOptions) -> Table {
    let sizes = size_ladder(opts);
    let widths = width_ladder(opts);
    let pairs: Vec<(usize, usize)> = sizes
        .iter()
        .flat_map(|&s| widths.iter().map(move |&w| (s, w)))
        .collect();
    let sweep = *opts;
    let computed = parallel_cells(pairs, opts.workers, move |size, width| {
        rewrite_cell(size, width, &sweep)
    });
    let mut rows = Vec::new();
    let mut iter = computed.into_iter();
    for size in &sizes {
        let cells = widths
            .iter()
            .map(|_| match iter.next().expect("cell per pair") {
                Some(cell) => secs(cell.translate_time),
                None => Cell::Dash,
            })
            .collect();
        rows.push((size.to_string(), cells));
    }
    Table {
        title: "Table 4 — CPU time [s] for translating the EUFM correctness formula to a \
                Boolean formula, rewriting rules + Positive Equality"
            .to_owned(),
        row_header: "ROB size \\ width".to_owned(),
        columns: width_ladder(opts).iter().map(ToString::to_string).collect(),
        rows,
    }
}

/// Table 5: CNF statistics with rewriting rules + Positive Equality
/// (independent of the reorder-buffer size; computed at the smallest
/// feasible size per width).
pub fn table5(opts: &SweepOptions) -> Table {
    let widths = width_ladder(opts);
    let sweep = *opts;
    let computed = parallel_cells(
        widths.iter().map(|&w| (w.max(2), w)).collect(),
        opts.workers,
        move |size, width| rewrite_cell(size, width, &sweep),
    );
    let mut eij = Vec::new();
    let mut other = Vec::new();
    let mut total = Vec::new();
    let mut vars = Vec::new();
    let mut clauses = Vec::new();
    let mut time = Vec::new();
    for cell in computed {
        match cell {
            Some(cell) => {
                eij.push(Cell::Count(cell.stats.eij_vars));
                other.push(Cell::Count(cell.stats.other_vars));
                total.push(Cell::Count(cell.stats.total_primary()));
                vars.push(Cell::Count(cell.stats.cnf_vars));
                clauses.push(Cell::Count(cell.stats.cnf_clauses));
                time.push(if cell.valid {
                    secs(cell.sat_time)
                } else {
                    Cell::OverBudget
                });
            }
            None => {
                for v in [
                    &mut eij,
                    &mut other,
                    &mut total,
                    &mut vars,
                    &mut clauses,
                    &mut time,
                ] {
                    v.push(Cell::Dash);
                }
            }
        }
    }
    Table {
        title: "Table 5 — CNF statistics for models with ANY reorder-buffer size, \
                rewriting rules + Positive Equality"
            .to_owned(),
        row_header: "any size, width →".to_owned(),
        columns: widths.iter().map(ToString::to_string).collect(),
        rows: vec![
            ("e_ij primary inputs".to_owned(), eij),
            ("other primary inputs".to_owned(), other),
            ("total primary inputs".to_owned(), total),
            ("CNF variables".to_owned(), vars),
            ("CNF clauses".to_owned(), clauses),
            ("SAT CPU time [s]".to_owned(), time),
        ],
    }
}

/// The buggy-variant experiment (Sect. 7.2): forwarding bug in one operand
/// of slice 72 of a 128-entry, width-4 design.
pub struct BugExperiment {
    /// Time for the rewriting rules to localize the slice.
    pub rewriting_time: Duration,
    /// The diagnosed slice (should be 72).
    pub diagnosed_slice: Option<usize>,
    /// Time for the *correct* variant to verify with rewriting (the paper's
    /// companion number: 10 s vs 9 s for the bug).
    pub correct_time: Duration,
    /// What happened to the PE-only attempt.
    pub pe_only: Cell,
}

/// Runs the buggy-variant experiment.
pub fn bug_experiment(opts: &SweepOptions) -> BugExperiment {
    let config = Config::new(128, 4).expect("paper configuration");
    let bug = BugSpec::ForwardingIgnoresValidResult {
        slice: 72,
        operand: Operand::Src2,
    };

    let t = Instant::now();
    let mut bundle = correctness::generate_with(&config, Some(bug), tlsim::EvalStrategy::Lazy)
        .expect("generate");
    let input = RewriteInput {
        formula: bundle.formula,
        rf_impl: bundle.rf_impl,
        rf_spec0: bundle.rf_spec[0],
    };
    let diagnosed_slice =
        match rewrite_correctness(&mut bundle.ctx, &input, &RewriteOptions::default()) {
            Err(RewriteError::Slice { slice, .. }) => Some(slice),
            _ => None,
        };
    let rewriting_time = t.elapsed();

    let t = Instant::now();
    let cell = rewrite_cell(128, 4, opts).expect("correct variant");
    assert!(cell.valid, "correct 128x4 variant must verify");
    let correct_time = t.elapsed();

    // PE-only on the buggy variant: expected to exhaust its budget.
    let mut bundle = correctness::generate_with(&config, Some(bug), tlsim::EvalStrategy::Lazy)
        .expect("generate");
    let check = CheckOptions {
        memory: MemoryModel::Forwarding,
        max_nodes: opts.node_budget.min(3_000_000),
        sat_limits: Limits {
            max_seconds: Some(opts.sat_budget),
            ..Limits::none()
        },
        ..CheckOptions::default()
    };
    let t = Instant::now();
    let report = check_validity(&mut bundle.ctx, bundle.formula, &check);
    let pe_only = match report.outcome {
        CheckOutcome::Unknown(_) => Cell::OverBudget,
        _ => secs(t.elapsed()),
    };

    BugExperiment {
        rewriting_time,
        diagnosed_slice,
        correct_time,
        pe_only,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn markdown_rendering_shapes_cells() {
        let table = Table {
            title: "T".to_owned(),
            row_header: "r".to_owned(),
            columns: vec!["1".to_owned(), "2".to_owned()],
            rows: vec![("4".to_owned(), vec![Cell::Seconds(0.1234), Cell::Dash])],
        };
        let md = render_markdown(&table);
        assert!(md.contains("| 4 | 0.123 | — |"), "{md}");
    }

    #[test]
    fn ladders_respect_bounds() {
        let opts = SweepOptions {
            max_size: 16,
            max_width: 4,
            ..SweepOptions::default()
        };
        assert_eq!(size_ladder(&opts), vec![2, 4, 8, 16]);
        assert_eq!(width_ladder(&opts), vec![1, 2, 4]);
    }

    #[test]
    fn small_cells_compute() {
        let opts = SweepOptions {
            max_size: 4,
            max_width: 2,
            sat_budget: 30.0,
            node_budget: 5_000_000,
            workers: 1,
        };
        let (t, _) = generation_cell(4, 2).expect("generation");
        assert!(t.as_secs_f64() < 30.0);
        let cell = pe_only_cell(2, 1, &opts).expect("pe cell");
        assert!(cell.completed && cell.valid);
        let cell = rewrite_cell(4, 2, &opts).expect("rewrite cell");
        assert!(cell.valid);
        assert_eq!(cell.stats.eij_vars, 0);
    }

    #[test]
    fn parallel_cells_match_serial() {
        let pairs = vec![(4usize, 1usize), (4, 2), (2, 8), (8, 2)];
        let serial = parallel_cells(pairs.clone(), 1, |s, w| (w <= s).then(|| s * 10 + w));
        let parallel = parallel_cells(pairs, 4, |s, w| (w <= s).then(|| s * 10 + w));
        assert_eq!(serial, parallel);
        assert_eq!(serial, vec![Some(41), Some(42), None, Some(82)]);
    }

    #[test]
    fn worker_count_does_not_change_table_counts() {
        let serial = SweepOptions {
            max_size: 4,
            max_width: 2,
            ..SweepOptions::default()
        };
        let parallel = SweepOptions {
            workers: 4,
            ..serial
        };
        let a = table5(&serial);
        let b = table5(&parallel);
        // All count rows (everything except the SAT-time row) are
        // functions of the configuration alone.
        for (ra, rb) in a.rows.iter().zip(&b.rows).take(5) {
            assert_eq!(ra, rb, "row {} must be scheduling-independent", ra.0);
        }
    }
}
