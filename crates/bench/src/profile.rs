//! Profiled runs: traced verification with per-phase breakdowns and the
//! machine-readable `BENCH_5.json` artifact.
//!
//! The `tables profile` subcommand sweeps the Table 1 configurations
//! (clipped by `--max-size`/`--max-width`), traces each full
//! [`Verifier::run`] with the `rob-trace` span collector, prints a
//! per-phase breakdown table per configuration, and serializes the
//! whole sweep as one JSON document (schema documented in
//! `DESIGN.md` §12).

use std::fmt::Write as _;
use std::time::Duration;

use campaign::json::Json;
use rob_verify::trace::PhaseStat;
use rob_verify::{Config, Strategy, Verification, Verifier};
use sat::Limits;

use crate::{size_ladder, width_ladder, SweepOptions};

/// Schema identifier stamped into `BENCH_5.json`; bump when the layout
/// changes.
pub const BENCH5_SCHEMA: &str = "rob-bench-profile/v1";

/// One traced configuration of the profile sweep.
#[derive(Debug, Clone)]
pub struct ProfiledRun {
    /// Reorder-buffer size.
    pub rob_size: usize,
    /// Issue/retire width.
    pub issue_width: usize,
    /// Verification strategy.
    pub strategy: Strategy,
    /// Per-phase rollup (count, cumulative, self time) from the span tree.
    pub phases: Vec<PhaseStat>,
    /// Sum of root-span cumulative times (the traced wall time).
    pub total: Duration,
    /// Flamegraph-style text report of the span tree.
    pub flamegraph: String,
    /// The verification itself (verdict, timings, stats).
    pub verification: Verification,
}

/// Traces one configuration end to end. Returns `None` when the
/// configuration is infeasible (width exceeds size) or the run errors.
///
/// The committed cells finish in milliseconds, where a single cold run
/// is dominated by first-touch effects (page faults, allocator warm-up,
/// symbol interning). One untraced warm-up run precedes measurement, and
/// the reported run is the one with the **median traced total** of
/// `repeats` samples, so committed `BENCH_*.json` artifacts compare
/// steady-state numbers rather than cold-start noise.
pub fn profile_run(
    size: usize,
    width: usize,
    strategy: Strategy,
    opts: &SweepOptions,
    repeats: usize,
) -> Option<ProfiledRun> {
    let config = Config::new(size, width).ok()?;
    let verifier = Verifier::new(config).strategy(strategy).sat_limits(Limits {
        max_seconds: Some(opts.sat_budget),
        ..Limits::none()
    });
    verifier.run().ok()?; // warm-up, untraced
    let mut samples: Vec<ProfiledRun> = Vec::new();
    for _ in 0..repeats.max(1) {
        let (verification, tree) = verifier.run_traced().ok()?;
        samples.push(ProfiledRun {
            rob_size: size,
            issue_width: width,
            strategy,
            phases: tree.rollup(),
            total: tree.total(),
            flamegraph: tree.flamegraph(),
            verification,
        });
    }
    samples.sort_by_key(|a| a.total);
    let median = samples.swap_remove(samples.len() / 2);
    Some(median)
}

/// Profiles every Table 1 configuration within the sweep bounds,
/// serially (profiling is about timing; parallel cells would share
/// cores and skew the per-phase numbers). `repeats` samples are taken
/// per cell and the median-total run is reported.
pub fn profile_sweep(opts: &SweepOptions, repeats: usize) -> Vec<ProfiledRun> {
    let mut runs = Vec::new();
    for size in size_ladder(opts) {
        for width in width_ladder(opts) {
            if width > size {
                continue;
            }
            if let Some(run) = profile_run(size, width, Strategy::default(), opts, repeats) {
                runs.push(run);
            }
        }
    }
    runs
}

/// Renders one run as a per-phase breakdown table (markdown).
pub fn render_profile(run: &ProfiledRun) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "### Profile — rob{}xw{} {} ({:.3}s total)\n",
        run.rob_size,
        run.issue_width,
        run.strategy,
        run.total.as_secs_f64(),
    );
    let _ = writeln!(
        out,
        "| phase | count | cumulative [s] | self [s] | self % |"
    );
    let _ = writeln!(out, "|---|---|---|---|---|");
    let total = run.total.as_secs_f64().max(f64::EPSILON);
    for phase in &run.phases {
        let _ = writeln!(
            out,
            "| {} | {} | {:.4} | {:.4} | {:.1} |",
            phase.name,
            phase.count,
            phase.cumulative.as_secs_f64(),
            phase.self_time.as_secs_f64(),
            100.0 * phase.self_time.as_secs_f64() / total,
        );
    }
    out
}

fn phase_json(phase: &PhaseStat) -> Json {
    Json::obj([
        ("phase", Json::str(phase.name)),
        ("count", Json::from(phase.count)),
        ("cumulative_secs", Json::Num(phase.cumulative.as_secs_f64())),
        ("self_secs", Json::Num(phase.self_time.as_secs_f64())),
    ])
}

/// Serializes a profile sweep as the `BENCH_5.json` document.
pub fn bench5_json(runs: &[ProfiledRun]) -> Json {
    let configs: Vec<Json> = runs
        .iter()
        .map(|run| {
            Json::obj([
                ("rob_size", Json::from(run.rob_size)),
                ("issue_width", Json::from(run.issue_width)),
                ("strategy", Json::str(run.strategy.to_string())),
                ("verdict", Json::str(run.verification.verdict.label())),
                ("total_secs", Json::Num(run.total.as_secs_f64())),
                (
                    "phases",
                    Json::Arr(run.phases.iter().map(phase_json).collect()),
                ),
                (
                    "timings",
                    campaign::codec::timings_to_json(&run.verification.timings),
                ),
                (
                    "stats",
                    campaign::codec::stats_to_json(&run.verification.stats),
                ),
            ])
        })
        .collect();
    Json::obj([
        ("schema", Json::str(BENCH5_SCHEMA)),
        ("configs", Json::Arr(configs)),
    ])
}

/// Outcome of the collector-overhead guard.
#[derive(Debug, Clone, Copy)]
pub struct OverheadReport {
    /// Median wall time with collectors disabled, seconds.
    pub disabled_secs: f64,
    /// Median wall time with a live span session + metrics, seconds.
    pub enabled_secs: f64,
    /// The ratio ceiling the guard enforced.
    pub threshold: f64,
    /// Absolute slack added to the ceiling, seconds.
    pub slack_secs: f64,
    /// Whether the enabled median stayed within the ceiling.
    pub within_budget: bool,
}

fn median_run_secs(config: Config, iterations: usize, traced: bool) -> f64 {
    let verifier = Verifier::new(config);
    let mut samples: Vec<f64> = (0..iterations)
        .map(|_| {
            let started = std::time::Instant::now();
            if traced {
                verifier.run_traced().expect("smoke run");
            } else {
                verifier.run().expect("smoke run");
            }
            started.elapsed().as_secs_f64()
        })
        .collect();
    samples.sort_by(f64::total_cmp);
    samples[samples.len() / 2]
}

/// Measures collector overhead on a smoke workload: the same small
/// configuration verified with collectors fully disabled, then with a
/// live span session and the metrics registry enabled. The guard
/// passes when `enabled <= threshold * disabled + slack`; the absolute
/// slack keeps sub-millisecond baselines from tripping on noise.
pub fn overhead_guard(threshold: f64, iterations: usize) -> OverheadReport {
    let config = Config::new(8, 2).expect("smoke configuration");
    let slack_secs = 0.050;
    // Warm-up solve so neither arm pays first-run allocation costs.
    Verifier::new(config).run().expect("warm-up");

    rob_verify::trace::disable_metrics();
    let disabled_secs = median_run_secs(config, iterations, false);

    rob_verify::trace::enable_metrics();
    let enabled_secs = median_run_secs(config, iterations, true);
    rob_verify::trace::disable_metrics();

    OverheadReport {
        disabled_secs,
        enabled_secs,
        threshold,
        slack_secs,
        within_budget: enabled_secs <= threshold * disabled_secs + slack_secs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profiled_run_covers_pipeline_phases() {
        let opts = SweepOptions {
            max_size: 4,
            max_width: 2,
            ..SweepOptions::default()
        };
        let run = profile_run(4, 2, Strategy::default(), &opts, 1).expect("profile");
        assert!(run.verification.is_verified());
        let names: Vec<&str> = run.phases.iter().map(|p| p.name).collect();
        for expected in [
            "verify",
            "generate",
            "evc.rewrite",
            "evc.pe",
            "sat.tseitin",
            "sat.cdcl",
        ] {
            assert!(names.contains(&expected), "missing {expected}: {names:?}");
        }
        assert!(run.total > Duration::ZERO);
        let table = render_profile(&run);
        assert!(table.contains("| verify |"), "{table}");
    }

    #[test]
    fn bench5_document_parses_and_pins_schema() {
        let opts = SweepOptions {
            max_size: 2,
            max_width: 1,
            ..SweepOptions::default()
        };
        let runs = profile_sweep(&opts, 1);
        assert!(!runs.is_empty());
        let text = bench5_json(&runs).to_string();
        let doc = campaign::json::parse(&text).expect("valid JSON");
        assert_eq!(
            doc.get("schema").and_then(Json::as_str),
            Some(BENCH5_SCHEMA)
        );
        let configs = match doc.get("configs") {
            Some(Json::Arr(items)) => items,
            other => panic!("configs must be an array, got {other:?}"),
        };
        assert_eq!(configs.len(), runs.len());
        for config in configs {
            for key in [
                "rob_size",
                "issue_width",
                "strategy",
                "phases",
                "timings",
                "stats",
            ] {
                assert!(config.get(key).is_some(), "missing {key}");
            }
        }
    }

    #[test]
    fn overhead_guard_reports_both_arms() {
        let report = overhead_guard(1000.0, 1);
        assert!(report.disabled_secs > 0.0);
        assert!(report.enabled_secs > 0.0);
        assert!(report.within_budget, "{report:?}");
    }
}
