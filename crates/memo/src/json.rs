//! A minimal JSON subset codec for the persisted memo journal.
//!
//! The memo crate sits below `campaign` in the dependency graph, so it
//! cannot reuse `campaign::json`; this is a deliberately tiny
//! re-implementation covering exactly what the journal needs: objects,
//! arrays, strings (with escapes), unsigned integers, and booleans.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A parsed JSON value (journal subset: no floats, no null, no nesting
/// limits beyond recursion depth).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Json {
    /// A string.
    Str(String),
    /// An unsigned integer.
    Num(u64),
    /// A boolean.
    Bool(bool),
    /// An array.
    Arr(Vec<Json>),
    /// An object; `BTreeMap` keeps encoding deterministic.
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// A string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// An object from key/value pairs.
    pub fn obj<const N: usize>(pairs: [(&str, Json); N]) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_owned(), v)).collect())
    }

    /// Member lookup on an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(map) => map.get(key),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The integer payload, if this is a number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The element list, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }
}

impl std::fmt::Display for Json {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Json::Str(s) => write_escaped(f, s),
            Json::Num(n) => write!(f, "{n}"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::Arr(items) => {
                f.write_char('[')?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_char(',')?;
                    }
                    write!(f, "{item}")?;
                }
                f.write_char(']')
            }
            Json::Obj(map) => {
                f.write_char('{')?;
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        f.write_char(',')?;
                    }
                    write_escaped(f, k)?;
                    f.write_char(':')?;
                    write!(f, "{v}")?;
                }
                f.write_char('}')
            }
        }
    }
}

fn write_escaped(f: &mut std::fmt::Formatter<'_>, s: &str) -> std::fmt::Result {
    f.write_char('"')?;
    for c in s.chars() {
        match c {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\r' => f.write_str("\\r")?,
            '\t' => f.write_str("\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => f.write_char(c)?,
        }
    }
    f.write_char('"')
}

/// Parses one JSON document, requiring the whole input be consumed.
///
/// # Errors
///
/// Returns a human-readable description of the first syntax error.
pub fn parse(text: &str) -> Result<Json, String> {
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing bytes at offset {pos}"));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        Some(b'"') => parse_string(bytes, pos).map(Json::Str),
        Some(b'{') => parse_object(bytes, pos),
        Some(b'[') => parse_array(bytes, pos),
        Some(b't') => parse_literal(bytes, pos, b"true", Json::Bool(true)),
        Some(b'f') => parse_literal(bytes, pos, b"false", Json::Bool(false)),
        Some(c) if c.is_ascii_digit() => parse_number(bytes, pos),
        Some(c) => Err(format!("unexpected byte {c:?} at offset {pos}", pos = *pos)),
        None => Err("unexpected end of input".to_owned()),
    }
}

fn parse_literal(bytes: &[u8], pos: &mut usize, lit: &[u8], value: Json) -> Result<Json, String> {
    if bytes[*pos..].starts_with(lit) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("bad literal at offset {pos}", pos = *pos))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    while *pos < bytes.len() && bytes[*pos].is_ascii_digit() {
        *pos += 1;
    }
    std::str::from_utf8(&bytes[start..*pos])
        .ok()
        .and_then(|s| s.parse().ok())
        .map(Json::Num)
        .ok_or_else(|| format!("bad number at offset {start}"))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    debug_assert_eq!(bytes[*pos], b'"');
    *pos += 1;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".to_owned()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .ok_or("truncated \\u escape")?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| "bad \\u escape".to_owned())?;
                        out.push(char::from_u32(code).ok_or("bad \\u code point")?);
                        *pos += 4;
                    }
                    _ => return Err("bad escape".to_owned()),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (the input is already a &str,
                // so the boundary math is safe).
                let rest = std::str::from_utf8(&bytes[*pos..]).map_err(|_| "non-UTF-8")?;
                let c = rest.chars().next().ok_or("unterminated string")?;
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    debug_assert_eq!(bytes[*pos], b'[');
    *pos += 1;
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(format!("expected , or ] at offset {pos}", pos = *pos)),
        }
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    debug_assert_eq!(bytes[*pos], b'{');
    *pos += 1;
    let mut map = BTreeMap::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(map));
    }
    loop {
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b'"') {
            return Err(format!("expected key at offset {pos}", pos = *pos));
        }
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b':') {
            return Err(format!("expected : at offset {pos}", pos = *pos));
        }
        *pos += 1;
        map.insert(key, parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(map));
            }
            _ => return Err(format!("expected , or }} at offset {pos}", pos = *pos)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips_the_journal_shapes() {
        let doc = Json::obj([
            ("fp", Json::str("0.1.0+s2")),
            ("key", Json::str("00ff")),
            ("n", Json::Num(42)),
            ("ok", Json::Bool(true)),
            (
                "classes",
                Json::Arr(vec![Json::str("t:a"), Json::str("m:rf \"x\"")]),
            ),
            ("value", Json::obj([("valid", Json::Bool(false))])),
        ]);
        let text = doc.to_string();
        assert_eq!(parse(&text).expect("parse"), doc);
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in [
            "",
            "{",
            "{\"a\"}",
            "{\"a\":}",
            "[1,]",
            "{\"a\":1} trailing",
            "\"unterminated",
            "nope",
        ] {
            assert!(parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn escapes_survive() {
        let doc = Json::str("a\"b\\c\nd\te\u{1}");
        let text = doc.to_string();
        assert_eq!(parse(&text).expect("parse"), doc);
    }
}
