//! The sharded, content-addressed obligation store.

use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use eufm::digest::{fnv1a_128, FNV128_OFFSET};

use crate::persist;

/// Lock shards; lookups hash to a shard so concurrent pool workers
/// rarely contend on the same lock.
pub(crate) const SHARDS: usize = 16;

static MEMO_HITS: trace::Counter = trace::Counter::new("memo.hits");
static MEMO_MISSES: trace::Counter = trace::Counter::new("memo.misses");
static MEMO_BYTES: trace::Counter = trace::Counter::new("memo.bytes");

/// What kind of query a memo entry answers.
///
/// The kind is folded into the key (so kinds can never alias) and
/// accounted separately, giving per-phase hit rates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemoKind {
    /// An R1–R5 rewrite-obligation discharge or per-obligation
    /// mini-solve verdict (`true` = valid).
    Obligation,
    /// A Positive-Equality classification: the general-equation
    /// variables of one sliced formula.
    Classes,
    /// A full main-solve result: verdict plus translation and solver
    /// statistics, replayed so warm runs report identical stats.
    Solve,
    /// A whole rewrite phase: the stats of a *successful* R1–R5 pass
    /// plus the digest of the rewritten formula, letting a warm run
    /// chain straight into the [`MemoKind::Solve`] record without
    /// re-rewriting.
    Rewrite,
}

impl MemoKind {
    pub(crate) const ALL: [MemoKind; 4] = [
        MemoKind::Obligation,
        MemoKind::Classes,
        MemoKind::Solve,
        MemoKind::Rewrite,
    ];

    pub(crate) fn index(self) -> usize {
        match self {
            MemoKind::Obligation => 0,
            MemoKind::Classes => 1,
            MemoKind::Solve => 2,
            MemoKind::Rewrite => 3,
        }
    }

    /// Stable journal label.
    pub fn label(self) -> &'static str {
        match self {
            MemoKind::Obligation => "obligation",
            MemoKind::Classes => "classes",
            MemoKind::Solve => "solve",
            MemoKind::Rewrite => "rewrite",
        }
    }

    /// Inverse of [`MemoKind::label`].
    pub fn from_label(label: &str) -> Option<MemoKind> {
        MemoKind::ALL.into_iter().find(|k| k.label() == label)
    }
}

/// A memoized main-solve outcome: the verdict plus every statistic the
/// caller would otherwise have measured, so a warm run's report is
/// field-for-field identical to the cold run's.
///
/// Only *valid* (and decisively invalid) outcomes are stored; cancelled
/// or resource-limited outcomes are never memoized — they depend on the
/// budget, not the formula.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SolveRecord {
    /// Whether the formula was valid.
    pub valid: bool,
    /// `e_ij` equality-encoding variables.
    pub eij_vars: u64,
    /// Other primary Boolean variables.
    pub other_vars: u64,
    /// CNF variables after Tseitin translation.
    pub cnf_vars: u64,
    /// CNF clauses after Tseitin translation.
    pub cnf_clauses: u64,
    /// EUFM DAG nodes of the input formula.
    pub input_nodes: u64,
    /// DAG nodes of the propositional formula.
    pub bool_nodes: u64,
    /// SAT decisions.
    pub decisions: u64,
    /// SAT propagations.
    pub propagations: u64,
    /// SAT conflicts.
    pub conflicts: u64,
    /// SAT restarts.
    pub restarts: u64,
    /// Learnt clauses retained at the end of the solve.
    pub learnt_clauses: u64,
    /// Learnt clauses deleted by database reduction.
    pub deleted_clauses: u64,
    /// Peak learnt-literal count.
    pub peak_learnt_literals: u64,
}

/// A memoized successful rewrite phase. Failed rewrites (slice
/// diagnoses, budget trips) are never stored — diagnoses carry
/// un-recorded detail and budget trips depend on the budget, not the
/// formula.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RewriteRecord {
    /// Machine-checked obligations discharged.
    pub obligations: u64,
    /// Obligations discharged by the syntactic fast path.
    pub syntactic_hits: u64,
    /// Retire-width update pairs merged.
    pub retire_pairs: u64,
    /// Content digest of the rewritten formula — the
    /// [`MemoKind::Solve`] lookup digest of the follow-on check.
    pub formula_digest: u128,
}

/// A stored answer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MemoValue {
    /// An obligation verdict (`true` = the obligation is valid).
    Verdict(bool),
    /// PE classification: sort-tagged general-variable names
    /// (`"t:name"`, `"m:name"`, `"b:name"`), sorted.
    Classes(Vec<String>),
    /// A full solve record.
    Solve(SolveRecord),
    /// A full rewrite-phase record.
    Rewrite(RewriteRecord),
}

impl MemoValue {
    /// The kind of query this value answers (implied by the variant).
    pub fn kind(&self) -> MemoKind {
        match self {
            MemoValue::Verdict(_) => MemoKind::Obligation,
            MemoValue::Classes(_) => MemoKind::Classes,
            MemoValue::Solve(_) => MemoKind::Solve,
            MemoValue::Rewrite(_) => MemoKind::Rewrite,
        }
    }

    /// Rough in-memory footprint, feeding the `memo.bytes` gauge.
    pub(crate) fn approx_bytes(&self) -> u64 {
        let payload = match self {
            MemoValue::Verdict(_) => 1,
            MemoValue::Classes(names) => names.iter().map(|n| n.len() + 24).sum(),
            MemoValue::Solve(_) => std::mem::size_of::<SolveRecord>(),
            MemoValue::Rewrite(_) => std::mem::size_of::<RewriteRecord>(),
        };
        // Key + shard-map overhead.
        (payload + 16 + 32) as u64
    }
}

/// Counters describing one store at a point in time.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MemoSnapshot {
    /// Total lookup hits (replay excluded).
    pub hits: u64,
    /// Total lookup misses.
    pub misses: u64,
    /// Live entries.
    pub entries: usize,
    /// Approximate stored bytes.
    pub bytes: u64,
    /// Per-kind `(hits, misses)`, indexed like [`MemoKind::index`]:
    /// obligation, classes, solve, rewrite.
    pub by_kind: [(u64, u64); 4],
}

impl MemoSnapshot {
    /// `hits / (hits + misses)`, or 0 with no traffic.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// A sharded map from content digest to memoized answer.
///
/// The store is keyed by *salted* digests: the code fingerprint given at
/// construction is FNV-folded into every key, so entries produced by a
/// different build can never alias — the same invalidation discipline as
/// [`JobKey`]'s embedded fingerprint, enforced structurally.
///
/// The store is unbounded: obligation records are tens of bytes and a
/// paper-scale sweep stores low millions of them, far below the solver's
/// own working set. `memo.bytes` tracks the footprint for operators.
pub struct ObligationStore {
    shards: Vec<Mutex<HashMap<u128, MemoValue>>>,
    fingerprint: String,
    salt: u128,
    hits: [AtomicU64; 4],
    misses: [AtomicU64; 4],
    bytes: AtomicU64,
    pub(crate) journal: Option<PathBuf>,
}

impl std::fmt::Debug for ObligationStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ObligationStore")
            .field("fingerprint", &self.fingerprint)
            .field("entries", &self.len())
            .field("journal", &self.journal)
            .finish_non_exhaustive()
    }
}

impl ObligationStore {
    /// An empty in-memory store gated by `fingerprint`.
    pub fn new(fingerprint: impl Into<String>) -> Self {
        let fingerprint = fingerprint.into();
        let salt = fnv1a_128(FNV128_OFFSET, fingerprint.as_bytes());
        ObligationStore {
            shards: (0..SHARDS).map(|_| Mutex::new(HashMap::new())).collect(),
            fingerprint,
            salt,
            hits: Default::default(),
            misses: Default::default(),
            bytes: AtomicU64::new(0),
            journal: None,
        }
    }

    /// Attaches a JSONL journal and replays it if it exists; see
    /// [`crate::persist`] for the defensive-replay rules.
    ///
    /// # Errors
    ///
    /// Fails only on I/O errors reading an existing journal; malformed
    /// content is skipped and counted, never fatal.
    pub fn with_store(
        fingerprint: impl Into<String>,
        path: impl Into<PathBuf>,
    ) -> std::io::Result<(Self, persist::ReplayReport)> {
        let mut store = ObligationStore::new(fingerprint);
        let path = path.into();
        let report = persist::replay(&mut store, &path)?;
        store.journal = Some(path);
        Ok((store, report))
    }

    /// The code fingerprint this store accepts.
    pub fn fingerprint(&self) -> &str {
        &self.fingerprint
    }

    fn shard(&self, salted: u128) -> &Mutex<HashMap<u128, MemoValue>> {
        &self.shards[(salted as usize) & (SHARDS - 1)]
    }

    /// Folds the build fingerprint into a content key.
    pub(crate) fn salted(&self, key: u128) -> u128 {
        fnv1a_128(self.salt, &key.to_be_bytes())
    }

    /// Looks up a memoized answer, counting a hit or a miss (globally
    /// via `memo.hits`/`memo.misses` and per kind).
    pub fn lookup(&self, kind: MemoKind, key: u128) -> Option<MemoValue> {
        let salted = self.salted(key);
        let found = self
            .shard(salted)
            .lock()
            .expect("memo shard poisoned")
            .get(&salted)
            .cloned();
        match found {
            Some(value) => {
                MEMO_HITS.inc();
                self.hits[kind.index()].fetch_add(1, Ordering::Relaxed);
                Some(value)
            }
            None => {
                MEMO_MISSES.inc();
                self.misses[kind.index()].fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Inserts (or overwrites) a memoized answer. The kind is implied by
    /// the value variant and already folded into `key` by the caller.
    pub fn insert(&self, key: u128, value: MemoValue) {
        let salted = self.salted(key);
        self.insert_salted(salted, value);
    }

    /// Raw insert of an already-salted key — the replay path, which must
    /// not re-salt (journal lines store salted keys).
    pub(crate) fn insert_salted(&self, salted: u128, value: MemoValue) {
        let added = value.approx_bytes();
        let old = self
            .shard(salted)
            .lock()
            .expect("memo shard poisoned")
            .insert(salted, value);
        let removed = old.map_or(0, |v| v.approx_bytes());
        if added >= removed {
            let delta = added - removed;
            self.bytes.fetch_add(delta, Ordering::Relaxed);
            MEMO_BYTES.add(delta);
        } else {
            self.bytes.fetch_sub(removed - added, Ordering::Relaxed);
        }
    }

    /// Live entries across all shards.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("memo shard poisoned").len())
            .sum()
    }

    /// Whether the store holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Resets the hit/miss accounting (journal replay is not traffic).
    pub(crate) fn reset_traffic(&self) {
        for counter in self.hits.iter().chain(self.misses.iter()) {
            counter.store(0, Ordering::Relaxed);
        }
    }

    /// A point-in-time counter snapshot.
    pub fn stats(&self) -> MemoSnapshot {
        let mut by_kind = [(0u64, 0u64); 4];
        let mut hits = 0;
        let mut misses = 0;
        for kind in MemoKind::ALL {
            let h = self.hits[kind.index()].load(Ordering::Relaxed);
            let m = self.misses[kind.index()].load(Ordering::Relaxed);
            by_kind[kind.index()] = (h, m);
            hits += h;
            misses += m;
        }
        MemoSnapshot {
            hits,
            misses,
            entries: self.len(),
            bytes: self.bytes.load(Ordering::Relaxed),
            by_kind,
        }
    }

    /// All entries, sorted by salted key — the deterministic journal
    /// order.
    pub(crate) fn sorted_entries(&self) -> Vec<(u128, MemoValue)> {
        let mut all = Vec::new();
        for shard in &self.shards {
            let shard = shard.lock().expect("memo shard poisoned");
            all.extend(shard.iter().map(|(k, v)| (*k, v.clone())));
        }
        all.sort_by_key(|(k, _)| *k);
        all
    }

    /// Writes the current contents to the attached journal, compacted,
    /// via an atomic temp-file rename. No-op without a journal.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn flush(&self) -> std::io::Result<()> {
        persist::flush(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_and_miss_accounting_per_kind() {
        let store = ObligationStore::new("test+s2");
        assert!(store.lookup(MemoKind::Obligation, 7).is_none());
        store.insert(7, MemoValue::Verdict(true));
        assert_eq!(
            store.lookup(MemoKind::Obligation, 7),
            Some(MemoValue::Verdict(true))
        );
        store.insert(9, MemoValue::Solve(SolveRecord::default()));
        assert!(store.lookup(MemoKind::Solve, 9).is_some());
        let snap = store.stats();
        assert_eq!(snap.hits, 2);
        assert_eq!(snap.misses, 1);
        assert_eq!(snap.entries, 2);
        assert_eq!(snap.by_kind[MemoKind::Obligation.index()], (1, 1));
        assert_eq!(snap.by_kind[MemoKind::Solve.index()], (1, 0));
        assert!(snap.bytes > 0);
        assert!((snap.hit_rate() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn different_fingerprints_cannot_alias() {
        let a = ObligationStore::new("build-a");
        let b = ObligationStore::new("build-b");
        assert_ne!(
            a.salted(42),
            b.salted(42),
            "fingerprint is folded into every key"
        );
    }

    #[test]
    fn overwrite_keeps_byte_accounting_consistent() {
        let store = ObligationStore::new("test");
        store.insert(1, MemoValue::Classes(vec!["t:a".into(), "t:b".into()]));
        let big = store.stats().bytes;
        store.insert(1, MemoValue::Classes(vec![]));
        assert!(store.stats().bytes < big);
        assert_eq!(store.len(), 1);
    }
}
