//! JSONL persistence for the obligation store.
//!
//! One `{"fp", "kind", "key", "sum", "value"}` object per line. Replay
//! follows the same defensive discipline as the serve result cache:
//!
//! - lines are read as raw bytes, so a torn final append or injected
//!   garbage (possibly non-UTF-8) degrades to a skipped line, never an
//!   I/O error that fails startup;
//! - each record carries an FNV checksum over its kind, key, and value
//!   rendering; a mismatch (corruption, hand-editing) rejects the line;
//! - records whose fingerprint does not match the running build are
//!   counted as stale and skipped — the journal invalidation story is
//!   the `CODE_FINGERPRINT` embedded in every record and folded into
//!   every in-memory key;
//! - duplicate keys resolve last-wins, so an append-mostly journal stays
//!   correct; [`flush`] rewrites it compacted, atomically (sibling temp
//!   file, fsync, rename).
//!
//! Replay does not count as lookup traffic.

use std::io::{BufRead, BufWriter, Write};
use std::path::{Path, PathBuf};

use crate::json::{self, Json};
use crate::store::{MemoKind, MemoValue, ObligationStore, RewriteRecord, SolveRecord};

/// Counters describing one journal replay.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReplayReport {
    /// Records accepted into the store.
    pub loaded: usize,
    /// Lines rejected (parse failure, checksum mismatch, malformed
    /// payload).
    pub rejected: usize,
    /// Valid records skipped because their code fingerprint does not
    /// match this build.
    pub stale: usize,
}

/// FNV-1a/64, matching the `JobKey` digest primitive: the journal
/// checksum does not need collision resistance, only corruption
/// detection.
fn fnv1a_64(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

fn value_to_json(value: &MemoValue) -> Json {
    match value {
        MemoValue::Verdict(v) => Json::obj([("verdict", Json::Bool(*v))]),
        MemoValue::Classes(names) => {
            Json::obj([("classes", Json::Arr(names.iter().map(Json::str).collect()))])
        }
        MemoValue::Solve(s) => Json::obj([
            ("valid", Json::Bool(s.valid)),
            (
                "tr",
                Json::Arr(
                    [
                        s.eij_vars,
                        s.other_vars,
                        s.cnf_vars,
                        s.cnf_clauses,
                        s.input_nodes,
                        s.bool_nodes,
                    ]
                    .map(Json::Num)
                    .into(),
                ),
            ),
            (
                "sat",
                Json::Arr(
                    [
                        s.decisions,
                        s.propagations,
                        s.conflicts,
                        s.restarts,
                        s.learnt_clauses,
                        s.deleted_clauses,
                        s.peak_learnt_literals,
                    ]
                    .map(Json::Num)
                    .into(),
                ),
            ),
        ]),
        MemoValue::Rewrite(r) => Json::obj([
            (
                "rw",
                Json::Arr(
                    [r.obligations, r.syntactic_hits, r.retire_pairs]
                        .map(Json::Num)
                        .into(),
                ),
            ),
            (
                "formula",
                Json::str(eufm::digest::digest_hex(r.formula_digest)),
            ),
        ]),
    }
}

fn value_from_json(kind: MemoKind, doc: &Json) -> Result<MemoValue, String> {
    match kind {
        MemoKind::Obligation => doc
            .get("verdict")
            .and_then(Json::as_bool)
            .map(MemoValue::Verdict)
            .ok_or_else(|| "missing verdict".to_owned()),
        MemoKind::Classes => {
            let items = doc
                .get("classes")
                .and_then(Json::as_arr)
                .ok_or_else(|| "missing classes".to_owned())?;
            let names = items
                .iter()
                .map(|item| item.as_str().map(str::to_owned))
                .collect::<Option<Vec<_>>>()
                .ok_or_else(|| "non-string class entry".to_owned())?;
            Ok(MemoValue::Classes(names))
        }
        MemoKind::Solve => {
            let valid = doc
                .get("valid")
                .and_then(Json::as_bool)
                .ok_or_else(|| "missing valid".to_owned())?;
            let nums = |field: &str, arity: usize| -> Result<Vec<u64>, String> {
                let items = doc
                    .get(field)
                    .and_then(Json::as_arr)
                    .ok_or_else(|| format!("missing {field}"))?;
                if items.len() != arity {
                    return Err(format!("{field} arity {} != {arity}", items.len()));
                }
                items
                    .iter()
                    .map(|item| item.as_u64())
                    .collect::<Option<Vec<_>>>()
                    .ok_or_else(|| format!("non-numeric {field} entry"))
            };
            let tr = nums("tr", 6)?;
            let sat = nums("sat", 7)?;
            Ok(MemoValue::Solve(SolveRecord {
                valid,
                eij_vars: tr[0],
                other_vars: tr[1],
                cnf_vars: tr[2],
                cnf_clauses: tr[3],
                input_nodes: tr[4],
                bool_nodes: tr[5],
                decisions: sat[0],
                propagations: sat[1],
                conflicts: sat[2],
                restarts: sat[3],
                learnt_clauses: sat[4],
                deleted_clauses: sat[5],
                peak_learnt_literals: sat[6],
            }))
        }
        MemoKind::Rewrite => {
            let items = doc
                .get("rw")
                .and_then(Json::as_arr)
                .ok_or_else(|| "missing rw".to_owned())?;
            if items.len() != 3 {
                return Err(format!("rw arity {} != 3", items.len()));
            }
            let nums = items
                .iter()
                .map(|item| item.as_u64())
                .collect::<Option<Vec<_>>>()
                .ok_or_else(|| "non-numeric rw entry".to_owned())?;
            let formula_hex = doc
                .get("formula")
                .and_then(Json::as_str)
                .ok_or_else(|| "missing formula".to_owned())?;
            let formula_digest = eufm::digest::digest_from_hex(formula_hex)
                .ok_or_else(|| format!("bad formula digest {formula_hex:?}"))?;
            Ok(MemoValue::Rewrite(RewriteRecord {
                obligations: nums[0],
                syntactic_hits: nums[1],
                retire_pairs: nums[2],
                formula_digest,
            }))
        }
    }
}

/// Encodes one journal record. `salted_key` is the store's in-memory
/// key (fingerprint already folded in).
pub fn encode_record(fingerprint: &str, salted_key: u128, value: &MemoValue) -> String {
    let key_hex = eufm::digest::digest_hex(salted_key);
    let payload = value_to_json(value);
    let sum = checksum(value.kind(), &key_hex, &payload);
    Json::obj([
        ("fp", Json::str(fingerprint)),
        ("kind", Json::str(value.kind().label())),
        ("key", Json::str(&key_hex)),
        ("sum", Json::str(format!("{sum:016x}"))),
        ("value", payload),
    ])
    .to_string()
}

fn checksum(kind: MemoKind, key_hex: &str, payload: &Json) -> u64 {
    fnv1a_64(format!("{}|{key_hex}|{payload}", kind.label()).as_bytes())
}

/// Decodes one journal record, validating the checksum.
///
/// # Errors
///
/// Returns a description of the first malformed field or a checksum
/// mismatch.
pub fn decode_record(line: &str) -> Result<(String, u128, MemoValue), String> {
    let doc = json::parse(line)?;
    let fp = doc
        .get("fp")
        .and_then(Json::as_str)
        .ok_or_else(|| "missing fp".to_owned())?;
    let kind_label = doc
        .get("kind")
        .and_then(Json::as_str)
        .ok_or_else(|| "missing kind".to_owned())?;
    let kind =
        MemoKind::from_label(kind_label).ok_or_else(|| format!("unknown kind {kind_label:?}"))?;
    let key_hex = doc
        .get("key")
        .and_then(Json::as_str)
        .ok_or_else(|| "missing key".to_owned())?;
    let key =
        eufm::digest::digest_from_hex(key_hex).ok_or_else(|| format!("bad key {key_hex:?}"))?;
    let payload = doc.get("value").ok_or_else(|| "missing value".to_owned())?;
    let stored_sum = doc
        .get("sum")
        .and_then(Json::as_str)
        .ok_or_else(|| "missing sum".to_owned())?;
    let expected = format!("{:016x}", checksum(kind, key_hex, payload));
    if stored_sum != expected {
        return Err(format!(
            "checksum mismatch: stored {stored_sum}, recomputed {expected}"
        ));
    }
    let value = value_from_json(kind, payload)?;
    Ok((fp.to_owned(), key, value))
}

/// Replays `path` into `store` if it exists; see the module docs for the
/// rejection rules.
pub(crate) fn replay(store: &mut ObligationStore, path: &Path) -> std::io::Result<ReplayReport> {
    let mut report = ReplayReport::default();
    if !path.exists() {
        return Ok(report);
    }
    let file = std::fs::File::open(path)?;
    let mut reader = std::io::BufReader::new(file);
    let mut raw = Vec::new();
    loop {
        raw.clear();
        match reader.read_until(b'\n', &mut raw) {
            Ok(0) => break,
            Ok(_) => {}
            Err(e) => {
                eprintln!("rob-memo: journal read stopped: {e}");
                break;
            }
        }
        let Ok(line) = std::str::from_utf8(&raw) else {
            eprintln!("rob-memo: skipping non-UTF-8 journal line");
            report.rejected += 1;
            continue;
        };
        if line.trim().is_empty() {
            continue;
        }
        match decode_record(line) {
            Ok((fp, key, value)) => {
                if fp == store.fingerprint() {
                    store.insert_salted(key, value);
                    report.loaded += 1;
                } else {
                    report.stale += 1;
                }
            }
            Err(reason) => {
                eprintln!("rob-memo: skipping bad journal line: {reason}");
                report.rejected += 1;
            }
        }
    }
    // Replay is not traffic: don't let it skew the hit rate.
    store.reset_traffic();
    Ok(report)
}

/// Writes the store's contents to its attached journal, compacted, via
/// an atomic temp-file rename.
pub(crate) fn flush(store: &ObligationStore) -> std::io::Result<()> {
    let Some(path) = &store.journal else {
        return Ok(());
    };
    let tmp = sibling_tmp(path);
    {
        let file = std::fs::File::create(&tmp)?;
        let mut out = BufWriter::new(file);
        for (key, value) in store.sorted_entries() {
            let mut line = encode_record(store.fingerprint(), key, &value).into_bytes();
            chaos::mangle("memo.store.flush-line", &mut line);
            out.write_all(&line)?;
            out.write_all(b"\n")?;
        }
        out.flush()?;
        // Make the bytes durable before the rename publishes them:
        // otherwise a crash can leave a renamed-but-empty journal.
        out.get_ref().sync_all()?;
    }
    std::fs::rename(&tmp, path)
}

fn sibling_tmp(path: &Path) -> PathBuf {
    let mut name = path.file_name().unwrap_or_default().to_os_string();
    name.push(".tmp");
    path.with_file_name(name)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("rob-memo-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn records_roundtrip_and_reject_checksum_mismatch() {
        let value = MemoValue::Solve(SolveRecord {
            valid: true,
            eij_vars: 3,
            cnf_clauses: 99,
            peak_learnt_literals: 7,
            ..Default::default()
        });
        let line = encode_record("0.1.0+s2", 0xdead_beef, &value);
        let (fp, key, back) = decode_record(&line).expect("decode");
        assert_eq!(fp, "0.1.0+s2");
        assert_eq!(key, 0xdead_beef);
        assert_eq!(back, value);
        let tampered = line.replace("\"valid\":true", "\"valid\":false");
        assert!(decode_record(&tampered).unwrap_err().contains("checksum"));
        assert!(decode_record("not json").is_err());

        let rewrite = MemoValue::Rewrite(RewriteRecord {
            obligations: 12,
            syntactic_hits: 5,
            retire_pairs: 2,
            formula_digest: 0x1234_5678_9abc_def0,
        });
        let line = encode_record("0.1.0+s2", 0xfeed, &rewrite);
        let (_, key, back) = decode_record(&line).expect("decode rewrite");
        assert_eq!(key, 0xfeed);
        assert_eq!(back, rewrite);
    }

    #[test]
    fn replay_is_last_wins_fingerprint_gated_and_not_traffic() {
        let dir = tmp_dir("replay");
        let path = dir.join("memo.jsonl");
        let text = format!(
            "{}\ngarbage line\n{}\n{}\n",
            encode_record("fp-a", 1, &MemoValue::Verdict(false)),
            encode_record("fp-b", 2, &MemoValue::Verdict(true)),
            encode_record("fp-a", 1, &MemoValue::Verdict(true)),
        );
        std::fs::write(&path, text).unwrap();
        let (store, report) = ObligationStore::with_store("fp-a", &path).unwrap();
        assert_eq!(
            report,
            ReplayReport {
                loaded: 2,
                rejected: 1,
                stale: 1
            }
        );
        assert_eq!(store.len(), 1, "duplicate key collapses last-wins");
        let snap = store.stats();
        assert_eq!((snap.hits, snap.misses), (0, 0), "replay is not traffic");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn flush_compacts_and_replays_cleanly() {
        let dir = tmp_dir("flush");
        let path = dir.join("memo.jsonl");
        let (store, _) = ObligationStore::with_store("fp", &path).unwrap();
        store.insert(10, MemoValue::Verdict(true));
        store.insert(11, MemoValue::Classes(vec!["t:a".into()]));
        store.insert(
            12,
            MemoValue::Solve(SolveRecord {
                valid: true,
                ..Default::default()
            }),
        );
        store.flush().unwrap();
        let (back, report) = ObligationStore::with_store("fp", &path).unwrap();
        assert_eq!(report.loaded, 3);
        assert_eq!(report.rejected + report.stale, 0);
        assert_eq!(back.len(), 3);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn torn_and_non_utf8_trailing_writes_degrade_to_skipped_lines() {
        let dir = tmp_dir("torn");
        let path = dir.join("memo.jsonl");
        let good = encode_record("fp", 5, &MemoValue::Verdict(true));
        let mut bytes = Vec::new();
        bytes.extend_from_slice(good.as_bytes());
        bytes.push(b'\n');
        bytes.extend_from_slice(&good.as_bytes()[..good.len() / 2]);
        bytes.push(b'\n');
        bytes.extend_from_slice(b"\xff\xfe{garbage");
        std::fs::write(&path, bytes).unwrap();
        let (store, report) = ObligationStore::with_store("fp", &path).unwrap();
        assert_eq!(report.loaded, 1, "the intact record replays");
        assert_eq!(report.rejected, 2, "torn + non-UTF-8 lines are skipped");
        assert_eq!(store.len(), 1);
        std::fs::remove_dir_all(&dir).ok();
    }
}
