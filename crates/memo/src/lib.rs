//! `rob-memo` — incremental, query-based obligation memoization.
//!
//! The verification pipeline is a tower of deterministic, repeatable
//! work: R1–R5 rewrite obligations, Positive-Equality classifications,
//! and whole-formula solves recur almost unchanged between neighboring
//! sweep cells — an `(N, k)` job and its `(N+1, k)` neighbor share
//! nearly everything. This crate is the salsa-style content-addressed
//! store that turns that repetition into reuse:
//!
//! - queries are keyed by the *structure* of the formula via
//!   [`eufm::digest`] (stable across contexts and processes), FNV-folded
//!   with a query-kind tag and any options that can change the answer;
//! - the build fingerprint (`core::jobkey::CODE_FINGERPRINT`, injected
//!   at construction) is folded into every key, so a code change
//!   invalidates the whole store structurally;
//! - the [`ObligationStore`] is sharded for concurrent pool workers and
//!   optionally persists to a JSONL journal with the same defensive
//!   replay discipline as the serve result cache ([`persist`]);
//! - consumers deep in the pipeline (`evc::rewrite`, `evc::check`) reach
//!   the store through an ambient thread-local [`MemoHandle`] bound by
//!   the orchestration layer ([`bind`]/[`current`]), mirroring how
//!   `trace` sessions work — `CheckOptions`/`RewriteOptions` stay `Copy`
//!   and signature-stable.
//!
//! Hit/miss traffic feeds the `memo.hits` / `memo.misses` / `memo.bytes`
//! metrics, and [`ObligationStore::stats`] gives per-kind hit rates for
//! `campaign --profile` and `robctl stats`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod json;
pub mod persist;
mod store;

use std::cell::RefCell;
use std::sync::Arc;

use eufm::digest::{fnv1a_128, FNV128_OFFSET};

pub use eufm::digest::Digester;
pub use persist::ReplayReport;
pub use store::{MemoKind, MemoSnapshot, MemoValue, ObligationStore, RewriteRecord, SolveRecord};

/// A shared handle to one obligation store. Cheap to clone; all clones
/// see the same entries and counters.
pub type MemoHandle = Arc<ObligationStore>;

/// Creates a fresh in-memory store handle gated by `fingerprint`.
pub fn new_handle(fingerprint: impl Into<String>) -> MemoHandle {
    Arc::new(ObligationStore::new(fingerprint))
}

/// Derives a store key from a query kind, a formula digest, and a
/// canonical rendering of whatever options can change the answer.
///
/// The kind tag keeps query spaces disjoint; the context string is for
/// inputs like the memory model, transitivity setting, or UF scheme —
/// anything that makes the same formula answer differently.
pub fn derive_key(kind: MemoKind, digest: u128, context: &str) -> u128 {
    let mut state = fnv1a_128(FNV128_OFFSET, &[kind_tag(kind)]);
    state = fnv1a_128(state, &digest.to_be_bytes());
    fnv1a_128(state, context.as_bytes())
}

fn kind_tag(kind: MemoKind) -> u8 {
    match kind {
        MemoKind::Obligation => b'O',
        MemoKind::Classes => b'C',
        MemoKind::Solve => b'S',
        MemoKind::Rewrite => b'R',
    }
}

thread_local! {
    static CURRENT: RefCell<Vec<MemoHandle>> = const { RefCell::new(Vec::new()) };
}

/// Binds `handle` as the ambient store for this thread until the guard
/// drops. Bindings nest; the innermost wins.
///
/// The orchestration layer (verifier, campaign worker, daemon worker)
/// binds once around a run; the pipeline reads [`current`] at each
/// memoization point.
#[must_use = "the binding ends when the guard drops"]
pub fn bind(handle: MemoHandle) -> BindGuard {
    CURRENT.with(|stack| stack.borrow_mut().push(handle));
    BindGuard {
        _not_send: std::marker::PhantomData,
    }
}

/// The ambient store bound to this thread, if any.
pub fn current() -> Option<MemoHandle> {
    CURRENT.with(|stack| stack.borrow().last().cloned())
}

/// RAII guard for a [`bind`] scope.
pub struct BindGuard {
    // !Send: the guard must drop on the thread that bound it.
    _not_send: std::marker::PhantomData<*const ()>,
}

impl Drop for BindGuard {
    fn drop(&mut self) {
        CURRENT.with(|stack| {
            stack.borrow_mut().pop();
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn binding_nests_and_unwinds() {
        assert!(current().is_none());
        let outer = new_handle("fp-outer");
        let inner = new_handle("fp-inner");
        let g1 = bind(outer.clone());
        assert_eq!(current().unwrap().fingerprint(), "fp-outer");
        {
            let _g2 = bind(inner);
            assert_eq!(current().unwrap().fingerprint(), "fp-inner");
        }
        assert_eq!(current().unwrap().fingerprint(), "fp-outer");
        drop(g1);
        assert!(current().is_none());
    }

    #[test]
    fn keys_separate_kinds_and_contexts() {
        let d = 0x1234_5678u128;
        let a = derive_key(MemoKind::Obligation, d, "");
        let b = derive_key(MemoKind::Classes, d, "");
        let c = derive_key(MemoKind::Obligation, d, "mem=c");
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_eq!(a, derive_key(MemoKind::Obligation, d, ""));
    }

    #[test]
    fn handle_is_shared_across_clones() {
        let handle = new_handle("fp");
        let clone = handle.clone();
        handle.insert(
            derive_key(MemoKind::Obligation, 1, ""),
            MemoValue::Verdict(true),
        );
        assert_eq!(
            clone.lookup(
                MemoKind::Obligation,
                derive_key(MemoKind::Obligation, 1, "")
            ),
            Some(MemoValue::Verdict(true))
        );
    }
}
