//! Phase-level tracing and metrics for the verification pipeline.
//!
//! Zero dependencies, std only. Two independent collectors:
//!
//! * **Spans** — RAII phase markers ([`span`]) collected into a per-run
//!   [`SpanTree`] while a [`Session`] is active on the current thread.
//!   Each span records a monotonic enter/exit pair, its parent, and
//!   optional `key=value` attributes; the tree offers self-time vs.
//!   cumulative rollups and a flamegraph-style text report.
//! * **Metrics** — process-global named [`Counter`]s and [`Gauge`]s with
//!   a snapshot API and Prometheus-style text exposition
//!   ([`prometheus`]).
//!
//! Both collectors follow the `crates/chaos` overhead discipline: when
//! disabled (no session on this thread / metrics not enabled), the only
//! cost at an instrumentation site is one relaxed atomic load.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Mutex, MutexGuard, OnceLock};
use std::time::{Duration, Instant};

// ---------------------------------------------------------------------------
// Spans
// ---------------------------------------------------------------------------

/// Number of live [`Session`]s across all threads. `span()` bails with a
/// single relaxed load when this is zero, so instrumented code is free
/// when nobody is tracing.
static ACTIVE_SESSIONS: AtomicUsize = AtomicUsize::new(0);

struct RawSpan {
    name: &'static str,
    parent: Option<usize>,
    start: Duration,
    end: Option<Duration>,
    attrs: Vec<(&'static str, String)>,
}

struct Arena {
    started: Instant,
    nodes: Vec<RawSpan>,
    /// Innermost span that has been entered but not exited.
    open: Option<usize>,
}

thread_local! {
    static ARENA: RefCell<Option<Arena>> = const { RefCell::new(None) };
}

/// A tracing session bound to the current thread. Spans entered on this
/// thread while the session is live are collected into its tree.
///
/// Sessions do not nest: opening a second session on a thread that
/// already has one yields an inert handle whose [`Session::finish`]
/// returns an empty tree, and the outer session keeps collecting.
#[must_use = "dropping a Session discards its span tree; call finish()"]
pub struct Session {
    active: bool,
}

/// Starts collecting spans on the current thread.
pub fn session() -> Session {
    let installed = ARENA.with(|a| {
        let mut slot = a.borrow_mut();
        if slot.is_some() {
            return false;
        }
        *slot = Some(Arena {
            started: Instant::now(),
            nodes: Vec::new(),
            open: None,
        });
        true
    });
    if installed {
        ACTIVE_SESSIONS.fetch_add(1, Ordering::SeqCst);
    }
    Session { active: installed }
}

impl Session {
    /// Ends the session and returns the collected span tree. Spans still
    /// open (e.g. when unwinding) are closed at the session end time.
    pub fn finish(mut self) -> SpanTree {
        self.take_tree()
    }

    fn take_tree(&mut self) -> SpanTree {
        if !self.active {
            return SpanTree::default();
        }
        self.active = false;
        ACTIVE_SESSIONS.fetch_sub(1, Ordering::SeqCst);
        let arena = ARENA.with(|a| a.borrow_mut().take());
        arena.map(build_tree).unwrap_or_default()
    }
}

impl Drop for Session {
    fn drop(&mut self) {
        if self.active {
            let _ = self.take_tree();
        }
    }
}

/// RAII span handle: the span opens at [`span`] and closes on drop (also
/// during panic unwinding, so a crashing phase still exits its span).
pub struct SpanGuard {
    index: Option<usize>,
}

/// Enters a named span on the current thread. Inert (one relaxed atomic
/// load) unless a [`Session`] is live on this thread.
pub fn span(name: &'static str) -> SpanGuard {
    if ACTIVE_SESSIONS.load(Ordering::Relaxed) == 0 {
        return SpanGuard { index: None };
    }
    let index = ARENA.with(|a| {
        let mut slot = a.borrow_mut();
        let arena = slot.as_mut()?;
        let start = arena.started.elapsed();
        let parent = arena.open;
        let idx = arena.nodes.len();
        arena.nodes.push(RawSpan {
            name,
            parent,
            start,
            end: None,
            attrs: Vec::new(),
        });
        arena.open = Some(idx);
        Some(idx)
    });
    SpanGuard { index }
}

impl SpanGuard {
    /// Attaches a `key=value` attribute to the span. No-op on an inert
    /// guard.
    pub fn attr(&self, key: &'static str, value: impl ToString) {
        let Some(index) = self.index else {
            return;
        };
        ARENA.with(|a| {
            if let Some(arena) = a.borrow_mut().as_mut() {
                arena.nodes[index].attrs.push((key, value.to_string()));
            }
        });
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(index) = self.index else {
            return;
        };
        ARENA.with(|a| {
            let mut slot = a.borrow_mut();
            let Some(arena) = slot.as_mut() else {
                return;
            };
            if arena.nodes[index].end.is_some() {
                return; // already closed (defensive; double-drop impossible)
            }
            let now = arena.started.elapsed();
            // Close this span plus any still-open descendants. Unwinding
            // drops inner guards first, but `mem::forget` or exotic drop
            // orders must not leave dangling opens.
            let mut cursor = arena.open;
            while let Some(i) = cursor {
                let node = &mut arena.nodes[i];
                if node.end.is_none() {
                    node.end = Some(now);
                }
                cursor = node.parent;
                if i == index {
                    break;
                }
            }
            arena.open = arena.nodes[index].parent;
        });
    }
}

// ---------------------------------------------------------------------------
// Span tree
// ---------------------------------------------------------------------------

/// One closed span in a finished [`SpanTree`].
#[derive(Debug, Clone)]
pub struct Span {
    /// Phase name, e.g. `evc.pe`.
    pub name: &'static str,
    /// Index of the enclosing span, if any.
    pub parent: Option<usize>,
    /// Indices of directly nested spans, in entry order.
    pub children: Vec<usize>,
    /// Enter time, relative to session start.
    pub start: Duration,
    /// Exit minus enter time (children included).
    pub cumulative: Duration,
    /// `key=value` attributes in attachment order.
    pub attrs: Vec<(&'static str, String)>,
}

/// Aggregated statistics for one phase name across a tree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PhaseStat {
    /// Phase name.
    pub name: &'static str,
    /// Number of spans with this name.
    pub count: usize,
    /// Summed cumulative time (nested same-name spans double-count).
    pub cumulative: Duration,
    /// Summed self time (exclusive of children; never double-counts).
    pub self_time: Duration,
}

/// A finished per-run span tree.
#[derive(Debug, Clone, Default)]
pub struct SpanTree {
    /// All spans, in entry order (parents precede children).
    pub nodes: Vec<Span>,
}

fn build_tree(arena: Arena) -> SpanTree {
    let close = arena.started.elapsed();
    let mut nodes: Vec<Span> = arena
        .nodes
        .iter()
        .map(|raw| Span {
            name: raw.name,
            parent: raw.parent,
            children: Vec::new(),
            start: raw.start,
            cumulative: raw.end.unwrap_or(close).saturating_sub(raw.start),
            attrs: raw.attrs.clone(),
        })
        .collect();
    for i in 0..nodes.len() {
        if let Some(p) = nodes[i].parent {
            nodes[p].children.push(i);
        }
    }
    SpanTree { nodes }
}

impl SpanTree {
    /// Whether the tree holds no spans.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Number of spans.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Indices of spans with no parent.
    pub fn roots(&self) -> Vec<usize> {
        (0..self.nodes.len())
            .filter(|&i| self.nodes[i].parent.is_none())
            .collect()
    }

    /// First span with the given name, in entry order.
    pub fn find(&self, name: &str) -> Option<usize> {
        self.nodes.iter().position(|n| n.name == name)
    }

    /// Self time of span `i`: cumulative minus the children's cumulative
    /// time. Children occupy disjoint sub-intervals of the parent, so
    /// over the whole tree self-times telescope: they sum exactly to the
    /// roots' cumulative time (see [`SpanTree::total`]).
    pub fn self_time(&self, i: usize) -> Duration {
        let child_sum: Duration = self.nodes[i]
            .children
            .iter()
            .map(|&c| self.nodes[c].cumulative)
            .sum();
        self.nodes[i].cumulative.saturating_sub(child_sum)
    }

    /// Total traced time: sum of the root spans' cumulative times.
    pub fn total(&self) -> Duration {
        self.roots()
            .into_iter()
            .map(|i| self.nodes[i].cumulative)
            .sum()
    }

    /// Distinct phase names, sorted.
    pub fn names(&self) -> Vec<&'static str> {
        let mut names: Vec<_> = self.nodes.iter().map(|n| n.name).collect();
        names.sort_unstable();
        names.dedup();
        names
    }

    /// Per-phase rollup (count, cumulative, self), ordered by descending
    /// self time, then name.
    pub fn rollup(&self) -> Vec<PhaseStat> {
        let mut by_name: BTreeMap<&'static str, PhaseStat> = BTreeMap::new();
        for i in 0..self.nodes.len() {
            let entry = by_name.entry(self.nodes[i].name).or_insert(PhaseStat {
                name: self.nodes[i].name,
                count: 0,
                cumulative: Duration::ZERO,
                self_time: Duration::ZERO,
            });
            entry.count += 1;
            entry.cumulative += self.nodes[i].cumulative;
            entry.self_time += self.self_time(i);
        }
        let mut stats: Vec<_> = by_name.into_values().collect();
        stats.sort_by(|a, b| b.self_time.cmp(&a.self_time).then(a.name.cmp(b.name)));
        stats
    }

    /// Structural well-formedness check (used by the property tests):
    /// parents precede their children, child intervals lie inside the
    /// parent interval, child lists are consistent, and self-times
    /// telescope to the total.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated invariant.
    pub fn well_formed(&self) -> Result<(), String> {
        for (i, node) in self.nodes.iter().enumerate() {
            if let Some(p) = node.parent {
                if p >= i {
                    return Err(format!("span {i} has non-preceding parent {p}"));
                }
                if !self.nodes[p].children.contains(&i) {
                    return Err(format!("span {i} missing from parent {p}'s children"));
                }
                let parent = &self.nodes[p];
                if node.start < parent.start {
                    return Err(format!("span {i} starts before parent {p}"));
                }
                if node.start + node.cumulative > parent.start + parent.cumulative {
                    return Err(format!("span {i} ends after parent {p}"));
                }
            }
            for &c in &node.children {
                if self.nodes[c].parent != Some(i) {
                    return Err(format!("span {i} lists non-child {c}"));
                }
            }
        }
        let self_sum: Duration = (0..self.nodes.len()).map(|i| self.self_time(i)).sum();
        if self_sum != self.total() {
            return Err(format!(
                "self-times sum to {self_sum:?}, roots total {:?}",
                self.total()
            ));
        }
        Ok(())
    }

    /// Flamegraph-style text report: one line per group of same-name
    /// siblings, indented by depth, with cumulative seconds, percent of
    /// the traced total, and a proportional bar.
    pub fn flamegraph(&self) -> String {
        let total = self.total().as_secs_f64();
        let mut out = String::new();
        let _ = writeln!(out, "flamegraph (cumulative seconds, % of traced total)");
        self.render_level(&self.roots(), 0, total, &mut out);
        out
    }

    fn render_level(&self, spans: &[usize], depth: usize, total: f64, out: &mut String) {
        // Group same-name siblings (e.g. one tlsim.step per cycle),
        // preserving first-seen order.
        let mut order: Vec<&'static str> = Vec::new();
        let mut groups: BTreeMap<&'static str, Vec<usize>> = BTreeMap::new();
        for &i in spans {
            let name = self.nodes[i].name;
            if !groups.contains_key(name) {
                order.push(name);
            }
            groups.entry(name).or_default().push(i);
        }
        for name in order {
            let members = &groups[name];
            let cumulative: Duration = members.iter().map(|&i| self.nodes[i].cumulative).sum();
            let secs = cumulative.as_secs_f64();
            let pct = if total > 0.0 {
                100.0 * secs / total
            } else {
                0.0
            };
            let bar_len = (pct / 2.5).round() as usize;
            let label = if members.len() > 1 {
                format!("{name} (x{})", members.len())
            } else {
                name.to_owned()
            };
            let indent = "  ".repeat(depth);
            let _ = writeln!(
                out,
                "{indent}{label:<w$} {secs:>9.3}s {pct:>5.1}% {bar}",
                w = 40usize.saturating_sub(indent.len()),
                bar = "#".repeat(bar_len),
            );
            let children: Vec<usize> = members
                .iter()
                .flat_map(|&i| self.nodes[i].children.iter().copied())
                .collect();
            if !children.is_empty() {
                self.render_level(&children, depth + 1, total, out);
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Metrics registry
// ---------------------------------------------------------------------------

/// Global metrics switch; `Counter::add`/`Gauge::set` are no-ops (one
/// relaxed load) while this is false.
static METRICS_ENABLED: AtomicBool = AtomicBool::new(false);

/// Counter vs. gauge, for exposition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricKind {
    /// Monotonically increasing within an enabled window.
    Counter,
    /// Last-write-wins instantaneous value.
    Gauge,
}

struct Registered {
    name: &'static str,
    kind: MetricKind,
    value: &'static AtomicU64,
}

fn registry() -> &'static Mutex<Vec<Registered>> {
    static REGISTRY: OnceLock<Mutex<Vec<Registered>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(Vec::new()))
}

fn lock_registry() -> MutexGuard<'static, Vec<Registered>> {
    registry().lock().unwrap_or_else(|e| e.into_inner())
}

/// A named monotonic counter. Declare as a `static`; it registers itself
/// on first use while metrics are enabled.
pub struct Counter {
    name: &'static str,
    value: AtomicU64,
    registered: AtomicBool,
}

impl Counter {
    /// A counter with a dotted lowercase name, e.g. `eufm.nodes.interned`.
    pub const fn new(name: &'static str) -> Self {
        Counter {
            name,
            value: AtomicU64::new(0),
            registered: AtomicBool::new(false),
        }
    }

    /// Adds `n`. One relaxed load when metrics are disabled.
    pub fn add(&'static self, n: u64) {
        if !METRICS_ENABLED.load(Ordering::Relaxed) {
            return;
        }
        self.value.fetch_add(n, Ordering::Relaxed);
        if !self.registered.swap(true, Ordering::SeqCst) {
            lock_registry().push(Registered {
                name: self.name,
                kind: MetricKind::Counter,
                value: &self.value,
            });
        }
    }

    /// Adds one.
    pub fn inc(&'static self) {
        self.add(1);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    /// The counter's name.
    pub fn name(&self) -> &'static str {
        self.name
    }
}

/// A named last-write-wins gauge. Declare as a `static`; it registers
/// itself on first use while metrics are enabled.
pub struct Gauge {
    name: &'static str,
    value: AtomicU64,
    registered: AtomicBool,
}

impl Gauge {
    /// A gauge with a dotted lowercase name, e.g. `serve.cache.entries`.
    pub const fn new(name: &'static str) -> Self {
        Gauge {
            name,
            value: AtomicU64::new(0),
            registered: AtomicBool::new(false),
        }
    }

    /// Sets the value. One relaxed load when metrics are disabled.
    pub fn set(&'static self, v: u64) {
        if !METRICS_ENABLED.load(Ordering::Relaxed) {
            return;
        }
        self.value.store(v, Ordering::Relaxed);
        if !self.registered.swap(true, Ordering::SeqCst) {
            lock_registry().push(Registered {
                name: self.name,
                kind: MetricKind::Gauge,
                value: &self.value,
            });
        }
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    /// The gauge's name.
    pub fn name(&self) -> &'static str {
        self.name
    }
}

/// Turns the metrics collectors on.
pub fn enable_metrics() {
    METRICS_ENABLED.store(true, Ordering::SeqCst);
}

/// Turns the metrics collectors off (values are retained).
pub fn disable_metrics() {
    METRICS_ENABLED.store(false, Ordering::SeqCst);
}

/// Whether metrics are currently enabled.
pub fn metrics_enabled() -> bool {
    METRICS_ENABLED.load(Ordering::Relaxed)
}

/// Zeroes every registered metric.
pub fn reset_metrics() {
    for m in lock_registry().iter() {
        m.value.store(0, Ordering::Relaxed);
    }
}

/// One metric's value at snapshot time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Sample {
    /// Dotted metric name.
    pub name: &'static str,
    /// Counter or gauge.
    pub kind: MetricKind,
    /// Value at snapshot time.
    pub value: u64,
}

/// Snapshot of all registered metrics, sorted by name.
pub fn snapshot() -> Vec<Sample> {
    let mut samples: Vec<Sample> = lock_registry()
        .iter()
        .map(|m| Sample {
            name: m.name,
            kind: m.kind,
            value: m.value.load(Ordering::Relaxed),
        })
        .collect();
    samples.sort_by(|a, b| a.name.cmp(b.name));
    samples
}

/// Prometheus metric name for a dotted internal name: `rob_` prefix,
/// dots and dashes become underscores, counters get a `_total` suffix.
pub fn prometheus_name(name: &str, kind: MetricKind) -> String {
    let body: String = name
        .chars()
        .map(|c| if c == '.' || c == '-' { '_' } else { c })
        .collect();
    match kind {
        MetricKind::Counter => format!("rob_{body}_total"),
        MetricKind::Gauge => format!("rob_{body}"),
    }
}

/// Prometheus-style text exposition of the current snapshot: a `# TYPE`
/// line followed by `name value`, per metric, sorted by name.
pub fn prometheus() -> String {
    let mut out = String::new();
    for sample in snapshot() {
        let name = prometheus_name(sample.name, sample.kind);
        let kind = match sample.kind {
            MetricKind::Counter => "counter",
            MetricKind::Gauge => "gauge",
        };
        let _ = writeln!(out, "# TYPE {name} {kind}");
        let _ = writeln!(out, "{name} {}", sample.value);
    }
    out
}

/// Serializes exclusive-metrics tests; the registry is process-global,
/// so exact-value assertions need the whole window to themselves.
fn test_lock() -> &'static Mutex<()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(()))
}

/// Exclusive metrics window for tests: holds a global lock, zeroes all
/// metrics, and enables collection; disables again on drop.
pub struct MetricsGuard {
    _lock: MutexGuard<'static, ()>,
}

/// Opens an exclusive metrics window (see [`MetricsGuard`]). Tests that
/// assert exact metric values must run under this guard — and live in a
/// test binary where every metrics-touching test does the same.
pub fn metrics_test_guard() -> MetricsGuard {
    let lock = test_lock().lock().unwrap_or_else(|e| e.into_inner());
    reset_metrics();
    enable_metrics();
    MetricsGuard { _lock: lock }
}

impl Drop for MetricsGuard {
    fn drop(&mut self) {
        disable_metrics();
    }
}

// ---------------------------------------------------------------------------
// Tests
// ---------------------------------------------------------------------------

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn span_without_session_is_inert() {
        let guard = span("orphan");
        assert!(guard.index.is_none());
        guard.attr("k", 1); // must not panic
    }

    #[test]
    fn nesting_and_self_time_telescope() {
        let session = session();
        {
            let _root = span("root");
            {
                let _a = span("a");
                thread::sleep(Duration::from_millis(2));
            }
            {
                let b = span("b");
                b.attr("size", 8);
                thread::sleep(Duration::from_millis(2));
            }
        }
        let tree = session.finish();
        assert_eq!(tree.len(), 3);
        tree.well_formed().expect("well-formed");
        let root = tree.find("root").unwrap();
        assert_eq!(tree.nodes[root].children.len(), 2);
        let self_sum: Duration = (0..tree.len()).map(|i| tree.self_time(i)).sum();
        assert_eq!(self_sum, tree.nodes[root].cumulative);
        let b = tree.find("b").unwrap();
        assert_eq!(tree.nodes[b].attrs, vec![("size", "8".to_owned())]);
    }

    #[test]
    fn nested_sessions_are_inert() {
        let outer = session();
        {
            let inner = session();
            let _s = span("x");
            let tree = inner.finish(); // inert: outer still collecting
            assert!(tree.is_empty());
        }
        let tree = outer.finish();
        assert_eq!(tree.len(), 1);
        assert_eq!(tree.nodes[0].name, "x");
    }

    #[test]
    fn panic_closes_span_via_drop() {
        let session = session();
        let result = std::panic::catch_unwind(|| {
            let _root = span("root");
            let _inner = span("inner");
            panic!("boom");
        });
        assert!(result.is_err());
        let tree = session.finish();
        tree.well_formed().expect("well-formed after panic");
        assert_eq!(tree.len(), 2);
        // Both spans closed; inner still inside root.
        let root = tree.find("root").unwrap();
        let inner = tree.find("inner").unwrap();
        assert_eq!(tree.nodes[inner].parent, Some(root));
    }

    #[test]
    fn sessions_are_thread_local() {
        let session = session();
        let _outer = span("outer");
        let handle = thread::spawn(|| {
            // Other thread has no arena: inert even though a session is
            // active elsewhere.
            let guard = span("elsewhere");
            guard.index.is_none()
        });
        assert!(handle.join().unwrap());
        let tree = session.finish();
        assert_eq!(tree.len(), 1);
    }

    #[test]
    fn flamegraph_groups_siblings() {
        let session = session();
        {
            let _root = span("root");
            for _ in 0..3 {
                let _step = span("step");
            }
        }
        let tree = session.finish();
        let graph = tree.flamegraph();
        assert!(graph.contains("root"));
        assert!(graph.contains("step (x3)"));
        let rollup = tree.rollup();
        let step = rollup.iter().find(|s| s.name == "step").unwrap();
        assert_eq!(step.count, 3);
    }

    static TEST_COUNTER: Counter = Counter::new("trace.test.counter");
    static TEST_GAUGE: Gauge = Gauge::new("trace.test.gauge");

    #[test]
    fn metrics_register_and_expose() {
        let _guard = metrics_test_guard();
        TEST_COUNTER.add(41);
        TEST_COUNTER.inc();
        TEST_GAUGE.set(7);
        assert_eq!(TEST_COUNTER.get(), 42);
        let samples = snapshot();
        let counter = samples
            .iter()
            .find(|s| s.name == "trace.test.counter")
            .unwrap();
        assert_eq!(counter.value, 42);
        assert_eq!(counter.kind, MetricKind::Counter);
        let text = prometheus();
        assert!(text.contains("# TYPE rob_trace_test_counter_total counter"));
        assert!(text.contains("rob_trace_test_counter_total 42"));
        assert!(text.contains("# TYPE rob_trace_test_gauge gauge"));
        assert!(text.contains("rob_trace_test_gauge 7"));
    }

    #[test]
    fn disabled_metrics_do_not_accumulate() {
        let _guard = metrics_test_guard();
        drop(_guard); // disables
        let before = TEST_COUNTER.get();
        TEST_COUNTER.add(1000);
        assert_eq!(TEST_COUNTER.get(), before);
    }

    #[test]
    fn prometheus_names() {
        assert_eq!(
            prometheus_name("evc.rewrite.rule.r1", MetricKind::Counter),
            "rob_evc_rewrite_rule_r1_total"
        );
        assert_eq!(
            prometheus_name("serve.cache.entries", MetricKind::Gauge),
            "rob_serve_cache_entries"
        );
    }
}
