//! Concurrent-registry stress test: writer threads hammer counters while
//! a reader snapshots; every snapshot is internally consistent and the
//! final totals are exact.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;

static STRESS_A: trace::Counter = trace::Counter::new("trace.stress.a");
static STRESS_B: trace::Counter = trace::Counter::new("trace.stress.b");
static STRESS_DEPTH: trace::Gauge = trace::Gauge::new("trace.stress.depth");

#[test]
fn concurrent_counters_snapshot_consistently() {
    const WRITERS: usize = 8;
    const INCREMENTS: u64 = 20_000;

    let _guard = trace::metrics_test_guard();
    let stop = Arc::new(AtomicBool::new(false));

    // Reader: snapshot continuously while writers run. Counter `b` is
    // bumped by 2 only after `a` is bumped by 1, so within any snapshot
    // b <= 2a + 2*WRITERS (each writer can be mid-pair) — and values
    // never move backwards.
    let reader = {
        let stop = Arc::clone(&stop);
        thread::spawn(move || {
            let mut snapshots = 0usize;
            let (mut last_a, mut last_b) = (0u64, 0u64);
            while !stop.load(Ordering::Relaxed) {
                let samples = trace::snapshot();
                let value = |name: &str| {
                    samples
                        .iter()
                        .find(|s| s.name == name)
                        .map_or(0, |s| s.value)
                };
                let (a, b) = (value("trace.stress.a"), value("trace.stress.b"));
                assert!(a >= last_a, "counter a moved backwards: {last_a} -> {a}");
                assert!(b >= last_b, "counter b moved backwards: {last_b} -> {b}");
                assert!(
                    b <= 2 * a + 2 * WRITERS as u64,
                    "snapshot tore: a={a} b={b}"
                );
                (last_a, last_b) = (a, b);
                snapshots += 1;
            }
            snapshots
        })
    };

    let writers: Vec<_> = (0..WRITERS)
        .map(|w| {
            thread::spawn(move || {
                for i in 0..INCREMENTS {
                    STRESS_A.inc();
                    STRESS_B.add(2);
                    if i % 1024 == 0 {
                        STRESS_DEPTH.set(w as u64);
                    }
                }
            })
        })
        .collect();
    for w in writers {
        w.join().unwrap();
    }
    stop.store(true, Ordering::Relaxed);
    let snapshots = reader.join().unwrap();
    assert!(snapshots > 0, "reader never snapshotted");

    // Final totals are exact: no lost updates under contention.
    assert_eq!(STRESS_A.get(), WRITERS as u64 * INCREMENTS);
    assert_eq!(STRESS_B.get(), WRITERS as u64 * INCREMENTS * 2);
    assert!(STRESS_DEPTH.get() < WRITERS as u64);

    // The exposition renders the exact totals too.
    let text = trace::prometheus();
    assert!(text.contains(&format!(
        "rob_trace_stress_a_total {}",
        WRITERS as u64 * INCREMENTS
    )));
}
