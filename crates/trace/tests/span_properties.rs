//! Span-tree well-formedness property tests: every entered span exits
//! exactly once, parents outlive children, and self-times telescope to
//! the root cumulative time — including when a phase panics mid-span.

use std::time::Duration;

use proptest::prelude::*;

/// Runs a random open/close/attr program against the span collector and
/// returns (spans entered, finished tree).
fn run_program(ops: &[u8]) -> (usize, trace::SpanTree) {
    const NAMES: [&str; 4] = ["alpha", "beta", "gamma", "delta"];
    let session = trace::session();
    let mut stack: Vec<trace::SpanGuard> = Vec::new();
    let mut entered = 0usize;
    for (i, op) in ops.iter().enumerate() {
        match op % 3 {
            0 => {
                stack.push(trace::span(NAMES[i % NAMES.len()]));
                entered += 1;
            }
            1 => {
                // Close the innermost open span, if any.
                drop(stack.pop());
            }
            _ => {
                if let Some(guard) = stack.last() {
                    guard.attr("op", i);
                }
            }
        }
    }
    drop(stack); // close everything still open, innermost first
    (entered, session.finish())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn random_programs_yield_well_formed_trees(ops in prop::collection::vec(0u8..=2, 0..64)) {
        let (entered, tree) = run_program(&ops);
        // Every entered span is recorded exactly once and closed.
        prop_assert_eq!(tree.len(), entered);
        prop_assert!(tree.well_formed().is_ok(), "{:?}", tree.well_formed());
        // Self-times telescope: summed over all spans they equal the
        // roots' cumulative total exactly (no clamping, no drift).
        let self_sum: Duration = (0..tree.len()).map(|i| tree.self_time(i)).sum();
        prop_assert_eq!(self_sum, tree.total());
        // Parents outlive children: child interval inside parent interval.
        for node in &tree.nodes {
            if let Some(p) = node.parent {
                let parent = &tree.nodes[p];
                prop_assert!(node.start >= parent.start);
                prop_assert!(
                    node.start + node.cumulative <= parent.start + parent.cumulative
                );
            }
        }
    }
}

#[test]
fn chaos_panic_still_closes_spans() {
    // A phase that panics via an injected chaos fault must still close
    // its span through the guard's Drop, leaving a well-formed tree.
    let chaos = chaos::plan(0xDECAF).panic_at("trace.test.phase", 1).arm();
    let session = trace::session();
    let result = std::panic::catch_unwind(|| {
        let _run = trace::span("run");
        {
            let _setup = trace::span("setup");
        }
        let _phase = trace::span("phase");
        chaos::hit("trace.test.phase"); // panics here
        unreachable!("chaos fault must fire");
    });
    assert!(result.is_err(), "injected panic did not fire");
    assert_eq!(chaos.fired(), vec!["trace.test.phase"]);
    let tree = session.finish();
    tree.well_formed()
        .expect("tree well-formed after chaos panic");
    assert_eq!(tree.len(), 3);
    let run = tree.find("run").expect("run span recorded");
    let phase = tree.find("phase").expect("panicking span recorded");
    assert_eq!(tree.nodes[phase].parent, Some(run));
    let self_sum: Duration = (0..tree.len()).map(|i| tree.self_time(i)).sum();
    assert_eq!(self_sum, tree.total());
}
