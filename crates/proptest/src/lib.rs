//! Minimal, dependency-free shim of the [proptest] API surface this
//! workspace uses.
//!
//! The build environment has no access to a crate registry, so the real
//! `proptest` cannot be vendored. This shim implements just enough of the
//! same API — the [`proptest!`] / [`prop_assert!`] / [`prop_oneof!`]
//! macros, the [`strategy::Strategy`] combinators `prop_map` /
//! `prop_flat_map`, integer-range / tuple / `Just` / collection
//! strategies, and `any::<bool>()` — for the existing property-based
//! tests to compile and run unmodified.
//!
//! Semantics differences from the real crate, deliberately accepted:
//!
//! - **No shrinking.** A failing case panics with the case number; rerun
//!   with the same test name to reproduce (generation is deterministic,
//!   seeded from the test's module path and name).
//! - **No persistence.** `.proptest-regressions` files are ignored.
//!
//! [proptest]: https://docs.rs/proptest

#![forbid(unsafe_code)]

/// Strategy trait and combinators.
pub mod strategy {
    use crate::test_runner::TestRng;

    /// A generator of random values (shim: no shrinking).
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Generates one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Generates an intermediate value, builds a second strategy from
        /// it, and draws the final value from that.
        fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S: Strategy,
            F: Fn(Self::Value) -> S,
        {
            FlatMap { inner: self, f }
        }

        /// Erases the strategy type (used by [`crate::prop_oneof!`]).
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Box::new(self))
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    pub struct FlatMap<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S, T, F> Strategy for FlatMap<S, F>
    where
        S: Strategy,
        T: Strategy,
        F: Fn(S::Value) -> T,
    {
        type Value = T::Value;
        fn generate(&self, rng: &mut TestRng) -> T::Value {
            let mid = self.inner.generate(rng);
            (self.f)(mid).generate(rng)
        }
    }

    /// Always yields a clone of the given value.
    #[derive(Clone, Copy, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    trait DynStrategy<V> {
        fn generate_dyn(&self, rng: &mut TestRng) -> V;
    }

    impl<S: Strategy> DynStrategy<S::Value> for S {
        fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
            self.generate(rng)
        }
    }

    /// A type-erased strategy.
    pub struct BoxedStrategy<V>(Box<dyn DynStrategy<V>>);

    impl<V> Strategy for BoxedStrategy<V> {
        type Value = V;
        fn generate(&self, rng: &mut TestRng) -> V {
            self.0.generate_dyn(rng)
        }
    }

    /// Uniform choice among several strategies of one value type (the
    /// shim ignores the real crate's per-arm weights; all arms here are
    /// unweighted anyway).
    pub struct Union<V> {
        arms: Vec<BoxedStrategy<V>>,
    }

    impl<V> Union<V> {
        /// Builds a union over the given arms. Panics if `arms` is empty.
        pub fn new(arms: Vec<BoxedStrategy<V>>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Union { arms }
        }
    }

    impl<V> Strategy for Union<V> {
        type Value = V;
        fn generate(&self, rng: &mut TestRng) -> V {
            let i = (rng.next_u64() % self.arms.len() as u64) as usize;
            self.arms[i].generate(rng)
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),* $(,)?) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let off = (rng.next_u64() as u128 % span) as i128;
                    (self.start as i128 + off) as $t
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as i128 - lo as i128 + 1) as u128;
                    let off = (rng.next_u64() as u128 % span) as i128;
                    (lo as i128 + off) as $t
                }
            }
        )*};
    }

    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! tuple_strategy {
        ($(($($s:ident . $idx:tt),+);)*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }

    tuple_strategy! {
        (A.0, B.1);
        (A.0, B.1, C.2);
        (A.0, B.1, C.2, D.3);
    }
}

/// `any::<T>()` support.
pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Types with a canonical strategy.
    pub trait Arbitrary: Sized {
        /// The canonical strategy for the type.
        type Strategy: Strategy<Value = Self>;
        /// Returns the canonical strategy.
        fn arbitrary() -> Self::Strategy;
    }

    /// Returns the canonical strategy for `T`.
    pub fn any<T: Arbitrary>() -> T::Strategy {
        T::arbitrary()
    }

    /// Strategy yielding uniformly random booleans.
    #[derive(Clone, Copy, Debug, Default)]
    pub struct AnyBool;

    impl Strategy for AnyBool {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for bool {
        type Strategy = AnyBool;
        fn arbitrary() -> AnyBool {
            AnyBool
        }
    }

    macro_rules! arbitrary_int {
        ($($t:ty),* $(,)?) => {$(
            impl Arbitrary for $t {
                type Strategy = core::ops::RangeInclusive<$t>;
                fn arbitrary() -> Self::Strategy {
                    <$t>::MIN..=<$t>::MAX
                }
            }
        )*};
    }

    arbitrary_int!(u8, u16, u32, i8, i16, i32);
}

/// Collection strategies.
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy producing `Vec`s with lengths drawn from `size` and
    /// elements from `elem`.
    pub struct VecStrategy<S> {
        elem: S,
        size: core::ops::Range<usize>,
    }

    /// Creates a [`VecStrategy`].
    pub fn vec<S: Strategy>(elem: S, size: core::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { elem, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.clone().generate(rng);
            (0..len).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

/// Test-runner configuration, RNG, and error type.
pub mod test_runner {
    /// Configuration accepted by `#![proptest_config(..)]`.
    #[derive(Clone, Copy, Debug)]
    pub struct ProptestConfig {
        /// Number of cases to run per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A configuration running `cases` cases per property.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    /// A failed property case (the shim carries only a message).
    #[derive(Debug, Clone)]
    pub struct TestCaseError(String);

    impl TestCaseError {
        /// Creates a failure with the given message.
        pub fn fail(message: String) -> Self {
            TestCaseError(message)
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.0)
        }
    }

    /// Deterministic splitmix64 generator, seeded from the test name so
    /// every `cargo test` run replays the identical case sequence.
    #[derive(Clone, Debug)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeds the generator from an arbitrary label (FNV-1a hash).
        pub fn deterministic(label: &str) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in label.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            TestRng { state: h }
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }
}

/// The common imports, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};

    /// Mirrors the real prelude's `prop` module alias.
    pub mod prop {
        pub use crate::collection;
        pub use crate::strategy;
    }
}

/// Declares property tests. Each function body runs `cases` times with
/// freshly generated inputs; `prop_assert*` failures abort the case with
/// a panic (no shrinking in the shim).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($body:tt)*) => {
        $crate::__proptest_fns! { ($cfg) $($body)* }
    };
    ($($body:tt)*) => {
        $crate::__proptest_fns! { ($crate::test_runner::ProptestConfig::default()) $($body)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($cfg:expr) $($(#[$meta:meta])* fn $name:ident($($arg:pat_param in $strat:expr),+ $(,)?) $body:block)*) => {$(
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::test_runner::ProptestConfig = $cfg;
            let mut __rng = $crate::test_runner::TestRng::deterministic(
                concat!(module_path!(), "::", stringify!($name)),
            );
            for __case in 0..__cfg.cases {
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut __rng);)+
                let __result: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                if let ::std::result::Result::Err(__e) = __result {
                    panic!(
                        "property {} failed on case {}/{}: {}",
                        stringify!($name),
                        __case + 1,
                        __cfg.cases,
                        __e
                    );
                }
            }
        }
    )*};
}

/// Asserts a condition inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            __l == __r,
            "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
            stringify!($left),
            stringify!($right),
            __l,
            __r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        if !(__l == __r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!(
                    "{}\n  left: {:?}\n right: {:?}",
                    format!($($fmt)+),
                    __l,
                    __r
                ),
            ));
        }
    }};
}

/// Uniform choice among strategies producing one value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($arm)),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = crate::test_runner::TestRng::deterministic("bounds");
        for _ in 0..200 {
            let v = (3u8..9).generate(&mut rng);
            assert!((3..9).contains(&v));
            let w = (2usize..=8).generate(&mut rng);
            assert!((2..=8).contains(&w));
            let s = (-4i8..4).generate(&mut rng);
            assert!((-4..4).contains(&s));
        }
    }

    #[test]
    fn determinism_per_label() {
        let mut a = crate::test_runner::TestRng::deterministic("x");
        let mut b = crate::test_runner::TestRng::deterministic("x");
        let s = crate::collection::vec((0u8..200, any::<bool>()), 1..30);
        assert_eq!(s.generate(&mut a), s.generate(&mut b));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_smoke(v in prop::collection::vec(0u8..10, 1..5), b in any::<bool>()) {
            prop_assert!(!v.is_empty() && v.len() < 5);
            prop_assert_eq!(b, b);
            for x in &v {
                prop_assert!(*x < 10, "value {} out of range", x);
            }
        }

        #[test]
        fn oneof_and_flat_map(pair in (1usize..=4).prop_flat_map(|n| {
            prop_oneof![
                Just(0u8).prop_map(|x| x),
                1u8..5,
            ].prop_map(move |v| (n, v))
        })) {
            prop_assert!(pair.0 >= 1 && pair.0 <= 4);
            prop_assert!(pair.1 < 5);
        }
    }
}
