//! Structural tests of the generated out-of-order netlists across
//! configurations: latch census, control maps, and evaluation-strategy
//! agreement.

use std::collections::HashMap;

use eufm::Context;
use tlsim::{EvalStrategy, Simulator};
use uarch::ooo::OooProcessor;
use uarch::{correctness, names, Config};

#[test]
fn latch_census_scales_with_configuration() {
    for (n, k) in [(1usize, 1usize), (4, 2), (8, 8), (16, 4)] {
        let config = Config::new(n, k).expect("config");
        let p = OooProcessor::build(&config);
        // PC + RegFile + 7 fields per entry, N + k entries
        assert_eq!(p.design().num_latches(), 2 + 7 * (n + k), "rob{n}xw{k}");
        assert_eq!(p.entries().len(), n + k);
        assert_eq!(p.nd_fetch_inputs().len(), k);
        assert_eq!(p.nd_execute_inputs().len(), n);
    }
}

#[test]
fn regular_and_flush_controls_cover_all_controlled_inputs() {
    let config = Config::new(3, 2).expect("config");
    let p = OooProcessor::build(&config);
    let mut ctx = Context::new();
    let mut sim = Simulator::new(p.design(), &mut ctx, EvalStrategy::Lazy).expect("sim");
    p.init_empty_new_entries(&mut sim, &ctx);
    // both control maps must satisfy every Controlled input
    sim.step(&mut ctx, &p.regular_controls())
        .expect("regular step");
    for slice in 1..=config.total_entries() {
        sim.step(&mut ctx, &p.flush_controls(slice))
            .expect("flush step");
    }
    // an empty control map must fail (flush is Controlled)
    let mut sim2 = Simulator::new(p.design(), &mut ctx, EvalStrategy::Lazy).expect("sim");
    assert!(sim2.step(&mut ctx, &HashMap::new()).is_err());
}

#[test]
#[should_panic(expected = "flush slice 6 out of range")]
fn flush_controls_validate_the_slice() {
    let config = Config::new(3, 2).expect("config");
    let p = OooProcessor::build(&config);
    let _ = p.flush_controls(6); // N + k = 5, so 6 is out of range
}

#[test]
fn eager_evaluation_costs_strictly_more_events() {
    let config = Config::new(8, 2).expect("config");
    let lazy = correctness::generate_with(&config, None, EvalStrategy::Lazy).expect("lazy");
    let eager = correctness::generate_with(&config, None, EvalStrategy::Eager).expect("eager");
    assert!(
        lazy.stats.impl_events < eager.stats.impl_events,
        "lazy {} must beat eager {}",
        lazy.stats.impl_events,
        eager.stats.impl_events
    );
    assert!(lazy.stats.spec_events < eager.stats.spec_events);
}

#[test]
fn flushing_clears_every_valid_bit() {
    let config = Config::new(4, 2).expect("config");
    let p = OooProcessor::build(&config);
    let mut ctx = Context::new();
    let mut sim = Simulator::new(p.design(), &mut ctx, EvalStrategy::Lazy).expect("sim");
    p.init_empty_new_entries(&mut sim, &ctx);
    sim.step(&mut ctx, &p.regular_controls()).expect("regular");
    for slice in 1..=config.total_entries() {
        sim.step(&mut ctx, &p.flush_controls(slice)).expect("flush");
    }
    for (i, entry) in p.entries().iter().enumerate() {
        let v = sim.latch_state(entry.valid);
        assert!(
            ctx.is_false(v),
            "entry {} still valid after full flush",
            i + 1
        );
    }
}

#[test]
fn initial_state_variables_use_canonical_names() {
    let config = Config::new(2, 1).expect("config");
    let p = OooProcessor::build(&config);
    let mut ctx = Context::new();
    let sim = Simulator::new(p.design(), &mut ctx, EvalStrategy::Lazy).expect("sim");
    assert_eq!(sim.latch_state(p.pc()), ctx.tvar(names::PC));
    assert_eq!(sim.latch_state(p.regfile()), ctx.mvar(names::REG_FILE));
    assert_eq!(
        sim.latch_state(p.entries()[0].dest),
        ctx.tvar(&names::dest(1))
    );
    assert_eq!(
        sim.latch_state(p.entries()[1].valid_result),
        ctx.pvar(&names::valid_result(2))
    );
}

#[test]
fn retirement_only_touches_the_retire_width() {
    // With every ValidResult false, no *valid* instruction retires: after
    // one regular step each Valid bit is semantically unchanged (invalid
    // instructions may still leave the buffer, which does not change the
    // bit's value), and entries beyond the retire width are untouched
    // syntactically.
    use eufm::oracle::check_exhaustive;
    let config = Config::new(4, 2).expect("config");
    let p = OooProcessor::build(&config);
    let mut ctx = Context::new();
    let mut sim = Simulator::new(p.design(), &mut ctx, EvalStrategy::Lazy).expect("sim");
    p.init_empty_new_entries(&mut sim, &ctx);
    for entry in &p.entries()[..4] {
        sim.set_state(&ctx, entry.valid_result, Context::FALSE);
    }
    sim.step(&mut ctx, &p.regular_controls()).expect("regular");
    for i in 0..2 {
        let v = sim.latch_state(p.entries()[i].valid);
        let expected = ctx.pvar(&names::valid(i + 1));
        let same = ctx.iff(v, expected);
        assert!(
            check_exhaustive(&ctx, same, 1 << 22).is_valid(),
            "entry {} changed with no completed result",
            i + 1
        );
    }
    for i in 2..4 {
        let v = sim.latch_state(p.entries()[i].valid);
        let expected = ctx.pvar(&names::valid(i + 1));
        assert_eq!(v, expected, "entry {} is beyond the retire width", i + 1);
    }
}
