//! Semantic cross-validation of the correctness formula on tiny configs:
//! the bug-free formula must survive random-interpretation sampling, and
//! every seeded defect must be falsified by some interpretation.

use eufm::oracle::{check_sampled, OracleResult};
use uarch::{correctness, BugSpec, Config, Operand};

#[test]
fn correct_designs_survive_sampling() {
    for (n, k) in [(1, 1), (2, 1), (2, 2), (3, 2), (4, 2)] {
        let config = Config::new(n, k).expect("config");
        let bundle = correctness::generate(&config).expect("generate");
        let result = check_sampled(&bundle.ctx, bundle.formula, 400);
        assert!(
            result.is_valid(),
            "config rob{n}xw{k} falsified by sampling: {result:?}"
        );
    }
}

#[test]
fn forwarding_bug_is_falsified() {
    let config = Config::new(4, 2).expect("config");
    let bug = BugSpec::ForwardingIgnoresValidResult {
        slice: 3,
        operand: Operand::Src1,
    };
    let bundle = correctness::generate_with(&config, Some(bug), tlsim::EvalStrategy::Lazy)
        .expect("generate");
    let result = check_sampled(&bundle.ctx, bundle.formula, 3000);
    assert!(
        matches!(result, OracleResult::Invalid(_)),
        "buggy design not falsified: {result:?}"
    );
}

#[test]
fn retire_out_of_order_bug_is_falsified() {
    let config = Config::new(3, 2).expect("config");
    let bug = BugSpec::RetireOutOfOrder { slice: 2 };
    let bundle = correctness::generate_with(&config, Some(bug), tlsim::EvalStrategy::Lazy)
        .expect("generate");
    let result = check_sampled(&bundle.ctx, bundle.formula, 3000);
    assert!(
        matches!(result, OracleResult::Invalid(_)),
        "buggy design not falsified: {result:?}"
    );
}
