//! Canonical names for state variables and uninterpreted symbols.
//!
//! The implementation and specification machines share uninterpreted
//! symbols (the same `ALU`, `NextPC`, and instruction-memory field
//! functions must abstract both, or functional consistency would not
//! connect them) and share the initial user-visible state (`PC`,
//! `RegFile`). Keeping every name in one module guarantees the two
//! machines, the correctness generator, and the tests agree.

/// The program counter latch / initial-state variable.
pub const PC: &str = "PC";
/// The register file latch / initial-state variable.
pub const REG_FILE: &str = "RegFile";
/// The uninterpreted function abstracting the PC incrementer.
pub const NEXT_PC: &str = "NextPC";
/// The uninterpreted function abstracting all ALUs.
pub const ALU: &str = "ALU";
/// Uninterpreted predicate: the Valid bit of the instruction at an address.
pub const IMEM_VALID: &str = "IMemValid";
/// Uninterpreted function: the Opcode field of the instruction at an address.
pub const IMEM_OP: &str = "IMemOp";
/// Uninterpreted function: the Dest field of the instruction at an address.
pub const IMEM_DEST: &str = "IMemDest";
/// Uninterpreted function: the Src1 field of the instruction at an address.
pub const IMEM_SRC1: &str = "IMemSrc1";
/// Uninterpreted function: the Src2 field of the instruction at an address.
pub const IMEM_SRC2: &str = "IMemSrc2";
/// The flush control input.
pub const FLUSH: &str = "flush";

/// The name of per-entry latch `field` for 1-based entry `i`
/// (e.g. `Valid_3`).
pub fn entry(field: &str, i: usize) -> String {
    format!("{field}_{i}")
}

/// The Valid-bit latch of entry `i`.
pub fn valid(i: usize) -> String {
    entry("Valid", i)
}

/// The Opcode latch of entry `i`.
pub fn opcode(i: usize) -> String {
    entry("Opcode", i)
}

/// The destination-register latch of entry `i`.
pub fn dest(i: usize) -> String {
    entry("Dest", i)
}

/// The first source-register latch of entry `i`.
pub fn src1(i: usize) -> String {
    entry("Src1", i)
}

/// The second source-register latch of entry `i`.
pub fn src2(i: usize) -> String {
    entry("Src2", i)
}

/// The ValidResult-bit latch of entry `i`.
pub fn valid_result(i: usize) -> String {
    entry("ValidResult", i)
}

/// The Result latch of entry `i`.
pub fn result(i: usize) -> String {
    entry("Result", i)
}

/// The non-deterministic fetch-control input for issue slot `j`.
pub fn nd_fetch(j: usize) -> String {
    format!("NDFetch_{j}")
}

/// The non-deterministic execution-control input for entry `i`.
pub fn nd_execute(i: usize) -> String {
    format!("NDExecute_{i}")
}

/// The flush-phase slice-activation control input for entry `i`.
pub fn flush_slot(i: usize) -> String {
    format!("flush_slot_{i}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn entry_names_are_one_based_and_stable() {
        assert_eq!(valid(1), "Valid_1");
        assert_eq!(dest(72), "Dest_72");
        assert_eq!(nd_fetch(2), "NDFetch_2");
        assert_eq!(flush_slot(130), "flush_slot_130");
    }
}
