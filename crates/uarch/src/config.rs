//! Processor configuration.

use crate::UarchError;

/// The parameters of an out-of-order processor instance: reorder-buffer
/// size and issue/retire width.
///
/// Following the paper, the issue width and retire width are equal (the
/// method does not depend on this) and the width may not exceed the
/// reorder-buffer size — those cells are dashes in the paper's tables.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Config {
    rob_size: usize,
    issue_width: usize,
}

impl Config {
    /// Creates a configuration with `rob_size` reorder-buffer entries and
    /// issue/retire width `issue_width`.
    ///
    /// # Errors
    ///
    /// Returns [`UarchError::InvalidConfig`] if either parameter is zero or
    /// the width exceeds the size.
    pub fn new(rob_size: usize, issue_width: usize) -> Result<Self, UarchError> {
        if rob_size == 0 || issue_width == 0 {
            return Err(UarchError::InvalidConfig {
                message: "rob_size and issue_width must be positive".to_owned(),
            });
        }
        if issue_width > rob_size {
            return Err(UarchError::InvalidConfig {
                message: format!(
                    "issue width {issue_width} exceeds reorder buffer size {rob_size}"
                ),
            });
        }
        Ok(Config {
            rob_size,
            issue_width,
        })
    }

    /// The number of reorder-buffer entries `N`.
    pub fn rob_size(&self) -> usize {
        self.rob_size
    }

    /// The issue/retire width `k`.
    pub fn issue_width(&self) -> usize {
        self.issue_width
    }

    /// The total number of entry latches in the abstract model: `N + k`
    /// (the extra `k` accept newly fetched instructions).
    pub fn total_entries(&self) -> usize {
        self.rob_size + self.issue_width
    }
}

impl std::fmt::Display for Config {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "rob{}xw{}", self.rob_size, self.issue_width)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn valid_configs() {
        let c = Config::new(8, 4).expect("valid");
        assert_eq!(c.rob_size(), 8);
        assert_eq!(c.issue_width(), 4);
        assert_eq!(c.total_entries(), 12);
        assert_eq!(c.to_string(), "rob8xw4");
        assert!(Config::new(1, 1).is_ok());
    }

    #[test]
    fn invalid_configs() {
        assert!(Config::new(0, 1).is_err());
        assert!(Config::new(1, 0).is_err());
        assert!(Config::new(2, 4).is_err());
    }
}
