//! The non-pipelined ISA specification processor.
//!
//! The specification executes one register-register instruction per clock
//! cycle: it fetches from the same read-only instruction memory (the
//! `IMem*` uninterpreted field functions of the program counter),
//! increments the PC with the same `NextPC` uninterpreted function,
//! computes the result with the same `ALU` uninterpreted function, and
//! writes the destination register when the instruction's `Valid` bit is
//! true.

use eufm::Sort;
use tlsim::{Design, LatchId};

use crate::names;

/// The generated specification machine.
#[derive(Debug)]
pub struct SpecProcessor {
    design: Design,
    pc: LatchId,
    regfile: LatchId,
}

impl Default for SpecProcessor {
    fn default() -> Self {
        Self::build()
    }
}

impl SpecProcessor {
    /// Generates the specification netlist.
    pub fn build() -> Self {
        let mut d = Design::new("isa_spec");
        let pc = d.latch(names::PC, Sort::Term);
        let regfile = d.latch(names::REG_FILE, Sort::Mem);
        let pc_out = d.latch_out(pc);
        let rf_out = d.latch_out(regfile);

        let valid = d.up(names::IMEM_VALID, vec![pc_out]);
        let op = d.uf(names::IMEM_OP, vec![pc_out]);
        let dest = d.uf(names::IMEM_DEST, vec![pc_out]);
        let src1 = d.uf(names::IMEM_SRC1, vec![pc_out]);
        let src2 = d.uf(names::IMEM_SRC2, vec![pc_out]);

        let v1 = d.read(rf_out, src1);
        let v2 = d.read(rf_out, src2);
        let data = d.uf(names::ALU, vec![op, v1, v2]);
        let written = d.write(rf_out, dest, data);
        let rf_next = d.mux(valid, written, rf_out);
        d.set_next(regfile, rf_next);

        let pc_next = d.uf(names::NEXT_PC, vec![pc_out]);
        d.set_next(pc, pc_next);

        d.mark_output("instr_valid", valid);
        SpecProcessor {
            design: d,
            pc,
            regfile,
        }
    }

    /// The generated netlist.
    pub fn design(&self) -> &Design {
        &self.design
    }

    /// The program-counter latch.
    pub fn pc(&self) -> LatchId {
        self.pc
    }

    /// The register-file latch.
    pub fn regfile(&self) -> LatchId {
        self.regfile
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eufm::Context;
    use std::collections::HashMap;
    use tlsim::{EvalStrategy, Simulator};

    #[test]
    fn one_step_executes_one_instruction() {
        let spec = SpecProcessor::build();
        let mut ctx = Context::new();
        let mut sim = Simulator::new(spec.design(), &mut ctx, EvalStrategy::Lazy).expect("sim");
        sim.step(&mut ctx, &HashMap::new()).expect("step");

        let pc0 = ctx.tvar(names::PC);
        let rf0 = ctx.mvar(names::REG_FILE);
        let pc1_expected = ctx.uf(names::NEXT_PC, vec![pc0]);
        assert_eq!(sim.latch_state(spec.pc()), pc1_expected);

        // RegFile' = ITE(IMemValid(PC), write(RF, IMemDest(PC), ALU(...)), RF)
        let valid = ctx.up(names::IMEM_VALID, vec![pc0]);
        let op = ctx.uf(names::IMEM_OP, vec![pc0]);
        let dest = ctx.uf(names::IMEM_DEST, vec![pc0]);
        let s1 = ctx.uf(names::IMEM_SRC1, vec![pc0]);
        let s2 = ctx.uf(names::IMEM_SRC2, vec![pc0]);
        let r1 = ctx.read(rf0, s1);
        let r2 = ctx.read(rf0, s2);
        let data = ctx.uf(names::ALU, vec![op, r1, r2]);
        let expected = ctx.update(rf0, valid, dest, data);
        assert_eq!(sim.latch_state(spec.regfile()), expected);
    }

    #[test]
    fn two_steps_chain_the_pc() {
        let spec = SpecProcessor::build();
        let mut ctx = Context::new();
        let mut sim = Simulator::new(spec.design(), &mut ctx, EvalStrategy::Lazy).expect("sim");
        sim.step(&mut ctx, &HashMap::new()).expect("step");
        sim.step(&mut ctx, &HashMap::new()).expect("step");
        let pc0 = ctx.tvar(names::PC);
        let pc1 = ctx.uf(names::NEXT_PC, vec![pc0]);
        let pc2 = ctx.uf(names::NEXT_PC, vec![pc1]);
        assert_eq!(sim.latch_state(spec.pc()), pc2);
    }
}
