//! Seeded design defects for the buggy-variant experiments.

use crate::{Config, UarchError};

/// Which data operand of an instruction a bug affects.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Operand {
    /// The first source operand.
    Src1,
    /// The second source operand.
    Src2,
}

/// A seeded defect injected into the generated implementation processor.
///
/// The paper's buggy variant (Sect. 7.2) is a bug "in the forwarding logic
/// for one of the data operands of the 72nd instruction in the reorder
/// buffer" of a 128-entry, width-4 design; [`BugSpec::ForwardingIgnoresValidResult`]
/// with `slice: 72` reproduces it. The other variants exercise different
/// parts of the rewriting rules in the test suite.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BugSpec {
    /// The forwarding logic for the given operand of entry `slice` treats a
    /// matching preceding instruction's result as available without
    /// checking its `ValidResult` bit — so a stale `Result` value can be
    /// forwarded.
    ForwardingIgnoresValidResult {
        /// 1-based reorder-buffer entry whose forwarding logic is broken.
        slice: usize,
        /// Which operand's forwarding is broken.
        operand: Operand,
    },
    /// The forwarding logic for the given operand of entry `slice` skips
    /// the nearest preceding entry, so it can forward from the wrong
    /// (older) producer when two preceding instructions write the register.
    ForwardingSkipsNearest {
        /// 1-based reorder-buffer entry whose forwarding logic is broken.
        slice: usize,
        /// Which operand's forwarding is broken.
        operand: Operand,
    },
    /// Entry `slice` (within the retire width) retires without checking
    /// that all older instructions retire in the same cycle, breaking
    /// in-order retirement.
    RetireOutOfOrder {
        /// 1-based reorder-buffer entry whose retire condition is broken.
        slice: usize,
    },
    /// Entry `slice`'s retirement writes the register file even when the
    /// instruction's `Valid` bit is false.
    RetireIgnoresValid {
        /// 1-based reorder-buffer entry whose retire write is broken.
        slice: usize,
    },
    /// The completion function for entry `slice` writes the stored `Result`
    /// field even when `ValidResult` is false (instead of computing the ALU
    /// result).
    CompletionUsesStaleResult {
        /// 1-based reorder-buffer entry whose completion function is broken.
        slice: usize,
    },
}

impl BugSpec {
    /// The paper's buggy variant: forwarding bug in one data operand of the
    /// 72nd instruction (intended for the 128-entry, width-4 design).
    pub fn paper_variant() -> Self {
        BugSpec::ForwardingIgnoresValidResult {
            slice: 72,
            operand: Operand::Src2,
        }
    }

    /// The 1-based slice the bug affects.
    pub fn slice(&self) -> usize {
        match *self {
            BugSpec::ForwardingIgnoresValidResult { slice, .. }
            | BugSpec::ForwardingSkipsNearest { slice, .. }
            | BugSpec::RetireOutOfOrder { slice }
            | BugSpec::RetireIgnoresValid { slice }
            | BugSpec::CompletionUsesStaleResult { slice } => slice,
        }
    }

    /// Validates the bug against a configuration.
    ///
    /// # Errors
    ///
    /// Returns [`UarchError::InvalidBug`] if the slice is out of range for
    /// the configuration, below the minimum the defect needs to be
    /// reachable (forwarding bugs need a preceding entry), or outside the
    /// retire width for retire bugs.
    pub fn validate(&self, config: &Config) -> Result<(), UarchError> {
        let n = config.rob_size();
        let k = config.issue_width();
        let slice = self.slice();
        if slice == 0 || slice > n {
            return Err(UarchError::InvalidBug {
                message: format!("slice {slice} out of range 1..={n}"),
            });
        }
        match self {
            BugSpec::ForwardingIgnoresValidResult { .. } if slice < 2 => {
                Err(UarchError::InvalidBug {
                    message: "forwarding bugs need a preceding entry (slice >= 2)".to_owned(),
                })
            }
            BugSpec::ForwardingSkipsNearest { .. } if slice < 2 => Err(UarchError::InvalidBug {
                message: "forwarding bugs need a preceding entry (slice >= 2)".to_owned(),
            }),
            BugSpec::RetireOutOfOrder { .. } if slice < 2 || slice > k => {
                Err(UarchError::InvalidBug {
                    message: format!("retire bugs need 2 <= slice <= retire width {k}"),
                })
            }
            BugSpec::RetireIgnoresValid { .. } if slice > k => Err(UarchError::InvalidBug {
                message: format!("retire bugs need slice <= retire width {k}"),
            }),
            _ => Ok(()),
        }
    }
}

impl std::fmt::Display for Operand {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Operand::Src1 => f.write_str("src1"),
            Operand::Src2 => f.write_str("src2"),
        }
    }
}

impl std::str::FromStr for Operand {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "src1" | "1" => Ok(Operand::Src1),
            "src2" | "2" => Ok(Operand::Src2),
            other => Err(format!("unknown operand {other:?} (expected src1 or src2)")),
        }
    }
}

/// The compact `kind:slice[:operand]` notation used by sweep files and the
/// campaign CLI, e.g. `forwarding-ignores-valid:72:src2`.
impl std::fmt::Display for BugSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            BugSpec::ForwardingIgnoresValidResult { slice, operand } => {
                write!(f, "forwarding-ignores-valid:{slice}:{operand}")
            }
            BugSpec::ForwardingSkipsNearest { slice, operand } => {
                write!(f, "forwarding-skips-nearest:{slice}:{operand}")
            }
            BugSpec::RetireOutOfOrder { slice } => write!(f, "retire-out-of-order:{slice}"),
            BugSpec::RetireIgnoresValid { slice } => write!(f, "retire-ignores-valid:{slice}"),
            BugSpec::CompletionUsesStaleResult { slice } => {
                write!(f, "completion-stale-result:{slice}")
            }
        }
    }
}

/// Parses the notation emitted by the [`Display`](std::fmt::Display) impl.
impl std::str::FromStr for BugSpec {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let mut parts = s.split(':');
        let kind = parts.next().unwrap_or_default();
        let slice: usize = parts
            .next()
            .ok_or_else(|| format!("bug spec {s:?} is missing its slice"))?
            .parse()
            .map_err(|e| format!("bad slice in bug spec {s:?}: {e}"))?;
        let operand = parts.next();
        if parts.next().is_some() {
            return Err(format!("trailing fields in bug spec {s:?}"));
        }
        let need_operand = || -> Result<Operand, String> {
            operand
                .ok_or_else(|| format!("bug spec {s:?} needs an operand (src1 or src2)"))?
                .parse()
        };
        let no_operand = |bug: BugSpec| -> Result<BugSpec, String> {
            match operand {
                Some(op) => Err(format!("bug kind {kind:?} takes no operand, got {op:?}")),
                None => Ok(bug),
            }
        };
        match kind {
            "forwarding-ignores-valid" => Ok(BugSpec::ForwardingIgnoresValidResult {
                slice,
                operand: need_operand()?,
            }),
            "forwarding-skips-nearest" => Ok(BugSpec::ForwardingSkipsNearest {
                slice,
                operand: need_operand()?,
            }),
            "retire-out-of-order" => no_operand(BugSpec::RetireOutOfOrder { slice }),
            "retire-ignores-valid" => no_operand(BugSpec::RetireIgnoresValid { slice }),
            "completion-stale-result" => no_operand(BugSpec::CompletionUsesStaleResult { slice }),
            other => Err(format!(
                "unknown bug kind {other:?} (expected forwarding-ignores-valid, \
                 forwarding-skips-nearest, retire-out-of-order, retire-ignores-valid, \
                 or completion-stale-result)"
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_parse_roundtrip() {
        let bugs = [
            BugSpec::paper_variant(),
            BugSpec::ForwardingSkipsNearest {
                slice: 4,
                operand: Operand::Src1,
            },
            BugSpec::RetireOutOfOrder { slice: 2 },
            BugSpec::RetireIgnoresValid { slice: 3 },
            BugSpec::CompletionUsesStaleResult { slice: 7 },
        ];
        for bug in bugs {
            let text = bug.to_string();
            assert_eq!(text.parse::<BugSpec>().unwrap(), bug, "{text}");
        }
        assert!("forwarding-ignores-valid:2".parse::<BugSpec>().is_err());
        assert!("retire-out-of-order:2:src1".parse::<BugSpec>().is_err());
        assert!("retire-out-of-order".parse::<BugSpec>().is_err());
        assert!("nonsense:1".parse::<BugSpec>().is_err());
    }

    #[test]
    fn paper_variant_targets_slice_72() {
        let bug = BugSpec::paper_variant();
        assert_eq!(bug.slice(), 72);
        let config = Config::new(128, 4).expect("config");
        bug.validate(&config)
            .expect("valid for the paper's configuration");
    }

    #[test]
    fn validation_rejects_out_of_range() {
        let config = Config::new(4, 2).expect("config");
        assert!(BugSpec::paper_variant().validate(&config).is_err());
        assert!(BugSpec::RetireOutOfOrder { slice: 3 }
            .validate(&config)
            .is_err());
        assert!(BugSpec::RetireOutOfOrder { slice: 2 }
            .validate(&config)
            .is_ok());
        assert!(BugSpec::ForwardingIgnoresValidResult {
            slice: 1,
            operand: Operand::Src1
        }
        .validate(&config)
        .is_err());
        assert!(BugSpec::CompletionUsesStaleResult { slice: 4 }
            .validate(&config)
            .is_ok());
        assert!(BugSpec::CompletionUsesStaleResult { slice: 5 }
            .validate(&config)
            .is_err());
    }
}
