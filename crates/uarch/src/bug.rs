//! Seeded design defects for the buggy-variant experiments.

use crate::{Config, UarchError};

/// Which data operand of an instruction a bug affects.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Operand {
    /// The first source operand.
    Src1,
    /// The second source operand.
    Src2,
}

/// A seeded defect injected into the generated implementation processor.
///
/// The paper's buggy variant (Sect. 7.2) is a bug "in the forwarding logic
/// for one of the data operands of the 72nd instruction in the reorder
/// buffer" of a 128-entry, width-4 design; [`BugSpec::ForwardingIgnoresValidResult`]
/// with `slice: 72` reproduces it. The other variants exercise different
/// parts of the rewriting rules in the test suite.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BugSpec {
    /// The forwarding logic for the given operand of entry `slice` treats a
    /// matching preceding instruction's result as available without
    /// checking its `ValidResult` bit — so a stale `Result` value can be
    /// forwarded.
    ForwardingIgnoresValidResult {
        /// 1-based reorder-buffer entry whose forwarding logic is broken.
        slice: usize,
        /// Which operand's forwarding is broken.
        operand: Operand,
    },
    /// The forwarding logic for the given operand of entry `slice` skips
    /// the nearest preceding entry, so it can forward from the wrong
    /// (older) producer when two preceding instructions write the register.
    ForwardingSkipsNearest {
        /// 1-based reorder-buffer entry whose forwarding logic is broken.
        slice: usize,
        /// Which operand's forwarding is broken.
        operand: Operand,
    },
    /// Entry `slice` (within the retire width) retires without checking
    /// that all older instructions retire in the same cycle, breaking
    /// in-order retirement.
    RetireOutOfOrder {
        /// 1-based reorder-buffer entry whose retire condition is broken.
        slice: usize,
    },
    /// Entry `slice`'s retirement writes the register file even when the
    /// instruction's `Valid` bit is false.
    RetireIgnoresValid {
        /// 1-based reorder-buffer entry whose retire write is broken.
        slice: usize,
    },
    /// The completion function for entry `slice` writes the stored `Result`
    /// field even when `ValidResult` is false (instead of computing the ALU
    /// result).
    CompletionUsesStaleResult {
        /// 1-based reorder-buffer entry whose completion function is broken.
        slice: usize,
    },
}

impl BugSpec {
    /// The paper's buggy variant: forwarding bug in one data operand of the
    /// 72nd instruction (intended for the 128-entry, width-4 design).
    pub fn paper_variant() -> Self {
        BugSpec::ForwardingIgnoresValidResult { slice: 72, operand: Operand::Src2 }
    }

    /// The 1-based slice the bug affects.
    pub fn slice(&self) -> usize {
        match *self {
            BugSpec::ForwardingIgnoresValidResult { slice, .. }
            | BugSpec::ForwardingSkipsNearest { slice, .. }
            | BugSpec::RetireOutOfOrder { slice }
            | BugSpec::RetireIgnoresValid { slice }
            | BugSpec::CompletionUsesStaleResult { slice } => slice,
        }
    }

    /// Validates the bug against a configuration.
    ///
    /// # Errors
    ///
    /// Returns [`UarchError::InvalidBug`] if the slice is out of range for
    /// the configuration, below the minimum the defect needs to be
    /// reachable (forwarding bugs need a preceding entry), or outside the
    /// retire width for retire bugs.
    pub fn validate(&self, config: &Config) -> Result<(), UarchError> {
        let n = config.rob_size();
        let k = config.issue_width();
        let slice = self.slice();
        if slice == 0 || slice > n {
            return Err(UarchError::InvalidBug {
                message: format!("slice {slice} out of range 1..={n}"),
            });
        }
        match self {
            BugSpec::ForwardingIgnoresValidResult { .. } if slice < 2 => {
                Err(UarchError::InvalidBug {
                    message: "forwarding bugs need a preceding entry (slice >= 2)".to_owned(),
                })
            }
            BugSpec::ForwardingSkipsNearest { .. } if slice < 2 => Err(UarchError::InvalidBug {
                message: "forwarding bugs need a preceding entry (slice >= 2)".to_owned(),
            }),
            BugSpec::RetireOutOfOrder { .. } if slice < 2 || slice > k => {
                Err(UarchError::InvalidBug {
                    message: format!("retire bugs need 2 <= slice <= retire width {k}"),
                })
            }
            BugSpec::RetireIgnoresValid { .. } if slice > k => Err(UarchError::InvalidBug {
                message: format!("retire bugs need slice <= retire width {k}"),
            }),
            _ => Ok(()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_variant_targets_slice_72() {
        let bug = BugSpec::paper_variant();
        assert_eq!(bug.slice(), 72);
        let config = Config::new(128, 4).expect("config");
        bug.validate(&config).expect("valid for the paper's configuration");
    }

    #[test]
    fn validation_rejects_out_of_range() {
        let config = Config::new(4, 2).expect("config");
        assert!(BugSpec::paper_variant().validate(&config).is_err());
        assert!(BugSpec::RetireOutOfOrder { slice: 3 }.validate(&config).is_err());
        assert!(BugSpec::RetireOutOfOrder { slice: 2 }.validate(&config).is_ok());
        assert!(BugSpec::ForwardingIgnoresValidResult { slice: 1, operand: Operand::Src1 }
            .validate(&config)
            .is_err());
        assert!(BugSpec::CompletionUsesStaleResult { slice: 4 }.validate(&config).is_ok());
        assert!(BugSpec::CompletionUsesStaleResult { slice: 5 }.validate(&config).is_err());
    }
}
