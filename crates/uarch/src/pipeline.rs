//! An in-order pipelined processor — the classical Burch–Dill benchmark
//! family on which the paper's method builds (its predecessor combined
//! rewriting rules and Positive Equality on in-order pipelines, ref. [31]).
//!
//! The machine is a three-stage register-register pipeline:
//!
//! - **IF/ID** — fetch the instruction at the PC (unless a
//!   non-deterministic stall, abstracting structural hazards, inserts a
//!   bubble), read the operands with full forwarding from the two
//!   downstream stages;
//! - **EX** — compute the ALU result;
//! - **WB** — write the destination register.
//!
//! Flushing (the Burch–Dill abstraction function) is simply running the
//! pipeline with fetching disabled until it drains — two cycles. The
//! correctness criterion is the same commutative diagram as for the
//! out-of-order core, with issue width 1: the user-visible state must be
//! updated by 0 (stall) or 1 instruction.
//!
//! Verification uses the Positive-Equality flow directly (there is no
//! reorder buffer for the rewriting rules to remove); the formula is small
//! for any pipeline depth, which is exactly the contrast the paper draws:
//! in-order pipelines were already tractable, out-of-order cores were not.

use std::collections::HashMap;

use eufm::{Context, ExprId, Sort};
use tlsim::{Design, InputId, InputKind, LatchId};

use crate::names;
use crate::spec::SpecProcessor;
use crate::UarchError;

/// Seeded defects for the pipelined processor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PipelineBug {
    /// Operand forwarding from the EX stage is missing: a dependent
    /// instruction reads a stale register value.
    MissingExForwarding,
    /// Operand forwarding from the WB stage is missing.
    MissingWbForwarding,
    /// Forwarding compares against the wrong stage's destination register.
    ForwardsFromWrongStage,
    /// The WB stage writes even when its instruction is a bubble.
    WritebackIgnoresValid,
}

/// The generated in-order pipelined processor.
#[derive(Debug)]
pub struct PipelinedProcessor {
    design: Design,
    pc: LatchId,
    regfile: LatchId,
    ex_valid: LatchId,
    wb_valid: LatchId,
    fetch_enable: InputId,
}

impl PipelinedProcessor {
    /// Generates the bug-free pipeline netlist.
    pub fn build() -> Self {
        Self::build_with_bug(None)
    }

    /// Generates the pipeline with an optional seeded defect.
    pub fn build_with_bug(bug: Option<PipelineBug>) -> Self {
        let mut d = Design::new("inorder_pipeline");

        // fetch_enable: driven false while flushing (bubble insertion).
        let fetch_enable = d.input("fetch_enable", Sort::Bool, InputKind::Controlled);
        // NDStall: non-deterministic structural-hazard abstraction.
        let nd_stall = d.input("NDStall", Sort::Bool, InputKind::FreshPerCycle);

        let pc = d.latch(names::PC, Sort::Term);
        let regfile = d.latch(names::REG_FILE, Sort::Mem);
        // EX stage latches
        let ex_valid = d.latch("ExValid", Sort::Bool);
        let ex_op = d.latch("ExOp", Sort::Term);
        let ex_dest = d.latch("ExDest", Sort::Term);
        let ex_val1 = d.latch("ExVal1", Sort::Term);
        let ex_val2 = d.latch("ExVal2", Sort::Term);
        // WB stage latches
        let wb_valid = d.latch("WbValid", Sort::Bool);
        let wb_dest = d.latch("WbDest", Sort::Term);
        let wb_result = d.latch("WbResult", Sort::Term);

        let pc_out = d.latch_out(pc);
        let rf_out = d.latch_out(regfile);
        let exv = d.latch_out(ex_valid);
        let exop = d.latch_out(ex_op);
        let exd = d.latch_out(ex_dest);
        let exa = d.latch_out(ex_val1);
        let exb = d.latch_out(ex_val2);
        let wbv = d.latch_out(wb_valid);
        let wbd = d.latch_out(wb_dest);
        let wbr = d.latch_out(wb_result);

        // --- WB stage: write the register file -------------------------------
        let rf_next = if matches!(bug, Some(PipelineBug::WritebackIgnoresValid)) {
            d.write(rf_out, wbd, wbr)
        } else {
            let w = d.write(rf_out, wbd, wbr);
            d.mux(wbv, w, rf_out)
        };
        d.set_next(regfile, rf_next);

        // --- EX stage: compute, move to WB ----------------------------------
        let ex_result = d.uf(names::ALU, vec![exop, exa, exb]);
        d.set_next(wb_valid, exv);
        d.set_next(wb_dest, exd);
        d.set_next(wb_result, ex_result);

        // --- IF/ID stage: fetch, decode, read operands with forwarding ------
        let fe = d.input_signal(fetch_enable);
        let stall_sig = d.input_signal(nd_stall);
        let nstall = d.not(stall_sig);
        let do_fetch = d.and2(fe, nstall);

        let imv = d.up(names::IMEM_VALID, vec![pc_out]);
        let insn_valid = d.and2(do_fetch, imv);
        let op = d.uf(names::IMEM_OP, vec![pc_out]);
        let dest = d.uf(names::IMEM_DEST, vec![pc_out]);
        let src1 = d.uf(names::IMEM_SRC1, vec![pc_out]);
        let src2 = d.uf(names::IMEM_SRC2, vec![pc_out]);

        // Forwarding: nearest-producer-first — EX shadows WB shadows RF.
        let read_operand = |d: &mut Design, src| {
            let from_rf = d.read(rf_out, src);
            let (wb_cmp_dest, ex_cmp_dest) =
                if matches!(bug, Some(PipelineBug::ForwardsFromWrongStage)) {
                    (exd, wbd) // swapped
                } else {
                    (wbd, exd)
                };
            let wb_match = d.eq_cmp(wb_cmp_dest, src);
            let wb_hit = d.and2(wbv, wb_match);
            let after_wb = if matches!(bug, Some(PipelineBug::MissingWbForwarding)) {
                from_rf
            } else {
                d.mux(wb_hit, wbr, from_rf)
            };
            let ex_match = d.eq_cmp(ex_cmp_dest, src);
            let ex_hit = d.and2(exv, ex_match);
            if matches!(bug, Some(PipelineBug::MissingExForwarding)) {
                after_wb
            } else {
                d.mux(ex_hit, ex_result, after_wb)
            }
        };
        let val1 = read_operand(&mut d, src1);
        let val2 = read_operand(&mut d, src2);

        d.set_next(ex_valid, insn_valid);
        d.set_next(ex_op, op);
        d.set_next(ex_dest, dest);
        d.set_next(ex_val1, val1);
        d.set_next(ex_val2, val2);

        let npc = d.uf(names::NEXT_PC, vec![pc_out]);
        let pc_next = d.mux(do_fetch, npc, pc_out);
        d.set_next(pc, pc_next);

        PipelinedProcessor {
            design: d,
            pc,
            regfile,
            ex_valid,
            wb_valid,
            fetch_enable,
        }
    }

    /// The generated netlist.
    pub fn design(&self) -> &Design {
        &self.design
    }

    /// Control assignments for one cycle of regular operation.
    pub fn regular_controls(&self) -> HashMap<InputId, ExprId> {
        let mut m = HashMap::new();
        m.insert(self.fetch_enable, Context::TRUE);
        m
    }

    /// Control assignments for one flush cycle (bubble insertion).
    pub fn flush_controls(&self) -> HashMap<InputId, ExprId> {
        let mut m = HashMap::new();
        m.insert(self.fetch_enable, Context::FALSE);
        m
    }

    /// Initializes a fresh simulation to an *empty* pipeline (both stages
    /// invalid), the canonical flushed initial state for this benchmark.
    pub fn init_empty(&self, sim: &mut tlsim::Simulator<'_>, ctx: &Context) {
        sim.set_state(ctx, self.ex_valid, Context::FALSE);
        sim.set_state(ctx, self.wb_valid, Context::FALSE);
    }

    /// The program-counter latch.
    pub fn pc(&self) -> LatchId {
        self.pc
    }

    /// The register-file latch.
    pub fn regfile(&self) -> LatchId {
        self.regfile
    }
}

/// The number of flush cycles needed to drain the pipeline.
pub const FLUSH_CYCLES: usize = 2;

/// Generates the Burch–Dill correctness formula for the pipelined
/// processor (issue width 1: the user-visible state advances by 0 or 1
/// instructions per cycle).
///
/// The pipeline starts in an *arbitrary* symbolic state — the two in-flight
/// instructions exercise the forwarding logic against the newly fetched
/// one — and both diagram sides apply the abstraction function (two flush
/// cycles) exactly as in the out-of-order case.
///
/// # Errors
///
/// Propagates simulation failures.
pub fn generate_pipeline_correctness(
    bug: Option<PipelineBug>,
) -> Result<(Context, ExprId), UarchError> {
    let proc = PipelinedProcessor::build_with_bug(bug);
    let spec = SpecProcessor::build();
    let mut ctx = Context::new();

    // Implementation side: one regular step from the arbitrary symbolic
    // initial state, then flush.
    let mut impl_sim = tlsim::Simulator::new(proc.design(), &mut ctx, tlsim::EvalStrategy::Lazy)?;
    impl_sim.step(&mut ctx, &proc.regular_controls())?;
    for _ in 0..FLUSH_CYCLES {
        impl_sim.step(&mut ctx, &proc.flush_controls())?;
    }
    let pc_impl = impl_sim.latch_state(proc.pc());
    let rf_impl = impl_sim.latch_state(proc.regfile());

    // Specification side: flush the initial state, then run the spec.
    let mut abs_sim = tlsim::Simulator::new(proc.design(), &mut ctx, tlsim::EvalStrategy::Lazy)?;
    for _ in 0..FLUSH_CYCLES {
        abs_sim.step(&mut ctx, &proc.flush_controls())?;
    }
    let pc0 = abs_sim.latch_state(proc.pc());
    let rf0 = abs_sim.latch_state(proc.regfile());

    let mut spec_sim = tlsim::Simulator::new(spec.design(), &mut ctx, tlsim::EvalStrategy::Lazy)?;
    spec_sim.set_state(&ctx, spec.pc(), pc0);
    spec_sim.set_state(&ctx, spec.regfile(), rf0);
    spec_sim.step(&mut ctx, &HashMap::new())?;
    let pc1 = spec_sim.latch_state(spec.pc());
    let rf1 = spec_sim.latch_state(spec.regfile());

    let mut disjuncts = Vec::new();
    for (pc_s, rf_s) in [(pc0, rf0), (pc1, rf1)] {
        let eq_pc = ctx.eq(pc_impl, pc_s);
        let eq_rf = ctx.eq(rf_impl, rf_s);
        disjuncts.push(ctx.and2(eq_pc, eq_rf));
    }
    let formula = ctx.or(disjuncts);
    Ok((ctx, formula))
}

#[cfg(test)]
mod tests {
    use super::*;
    use eufm::oracle::{check_sampled, OracleResult};

    #[test]
    fn correct_pipeline_survives_sampling() {
        let (ctx, formula) = generate_pipeline_correctness(None).expect("generate");
        let verdict = check_sampled(&ctx, formula, 1200);
        assert!(verdict.is_valid(), "pipeline falsified: {verdict:?}");
    }

    #[test]
    fn every_pipeline_bug_is_falsified() {
        for bug in [
            PipelineBug::MissingExForwarding,
            PipelineBug::MissingWbForwarding,
            PipelineBug::ForwardsFromWrongStage,
            PipelineBug::WritebackIgnoresValid,
        ] {
            let (ctx, formula) = generate_pipeline_correctness(Some(bug)).expect("generate");
            let verdict = check_sampled(&ctx, formula, 4000);
            assert!(
                matches!(verdict, OracleResult::Invalid(_)),
                "{bug:?} not falsified: {verdict:?}"
            );
        }
    }

    #[test]
    fn pipeline_netlist_is_small() {
        let p = PipelinedProcessor::build();
        assert!(p.design().num_signals() < 80);
        assert_eq!(p.design().num_latches(), 10); // PC, RF, 5 EX, 3 WB
    }
}
