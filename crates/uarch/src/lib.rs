//! Abstract out-of-order processor models with a reorder buffer.
//!
//! This crate generates, for any reorder-buffer size `N` and issue/retire
//! width `k`, the abstract out-of-order implementation processor of Velev's
//! DATE 2002 paper (Sect. 3–4) as a [`tlsim::Design`] netlist, together
//! with the non-pipelined ISA specification machine, and builds the
//! Burch–Dill correctness formula by symbolic simulation:
//!
//! - **Implementation** ([`ooo::OooProcessor`]): `N + k` reorder-buffer
//!   entry latches (fields `Valid`, `Opcode`, `Dest`, `Src1`, `Src2`,
//!   `ValidResult`, `Result`), fully instantiated forwarding/stalling logic,
//!   non-deterministic fetch (`NDFetch_i`) and execution (`NDExecute_i`)
//!   abstractions, in-order retirement of up to `k` instructions per cycle,
//!   and completion-function flushing driven one slice per cycle.
//! - **Specification** ([`spec::SpecProcessor`]): fetches one instruction
//!   per cycle from the same read-only instruction memory (abstracted by
//!   uninterpreted functions of the program counter), executes it with the
//!   same `ALU` uninterpreted function, and retires it immediately.
//! - **Correctness** ([`correctness::generate`]): one cycle of regular
//!   operation followed by flushing on the implementation side; flushing of
//!   the initial state followed by `0..=k` specification steps on the
//!   specification side; the user-visible state (PC and Register File) must
//!   match for some step count.
//! - **Bug injection** ([`BugSpec`]): the paper's buggy variant (a
//!   forwarding defect in one operand of one reorder-buffer slice) and
//!   several other seeded defects used by the test suite.
//!
//! # Example
//!
//! ```
//! use uarch::{correctness, Config};
//!
//! let config = Config::new(2, 1)?;
//! let bundle = correctness::generate(&config)?;
//! // The correctness formula is a single EUFM formula over the shared
//! // context; it is valid iff the processor is correct.
//! assert_eq!(bundle.ctx.sort(bundle.formula), eufm::Sort::Bool);
//! # Ok::<(), uarch::UarchError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod correctness;
pub mod names;
pub mod ooo;
pub mod pipeline;
pub mod spec;

mod bug;
mod config;

pub use bug::{BugSpec, Operand};
pub use config::Config;

/// Errors produced when generating or simulating processor models.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum UarchError {
    /// The configuration is invalid (zero sizes, or width exceeding size).
    InvalidConfig {
        /// Explanation of the violation.
        message: String,
    },
    /// A bug specification refers to a slice or operand outside the design.
    InvalidBug {
        /// Explanation of the violation.
        message: String,
    },
    /// Symbolic simulation failed.
    Sim(tlsim::SimError),
}

impl std::fmt::Display for UarchError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            UarchError::InvalidConfig { message } => write!(f, "invalid configuration: {message}"),
            UarchError::InvalidBug { message } => write!(f, "invalid bug spec: {message}"),
            UarchError::Sim(e) => write!(f, "simulation error: {e}"),
        }
    }
}

impl std::error::Error for UarchError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            UarchError::Sim(e) => Some(e),
            _ => None,
        }
    }
}

impl From<tlsim::SimError> for UarchError {
    fn from(e: tlsim::SimError) -> Self {
        UarchError::Sim(e)
    }
}
