//! Burch–Dill correctness-formula generation.
//!
//! The commutative diagram (paper Sect. 1, 5):
//!
//! - **implementation side**: one step of regular operation of the
//!   implementation from symbolic initial state `Q`, followed by the
//!   abstraction function (flushing by completion functions) —
//!   yielding `PC_Impl`, `RegFile_Impl`;
//! - **specification side**: the abstraction function applied directly to
//!   `Q`, followed by `j` steps of the specification for each
//!   `j in 0..=k` — yielding `PC_Spec,j`, `RegFile_Spec,j`.
//!
//! The processor is correct iff the user-visible state was updated in sync
//! by 0, 1, ... or `k` instructions:
//!
//! ```text
//! correctness = OR_{j=0..k} ( PC_Impl = PC_Spec,j  &  RegFile_Impl = RegFile_Spec,j )
//! ```

use std::collections::HashMap;

use eufm::{CancelToken, Context, ExprId};
use tlsim::{EvalStrategy, Simulator};

use crate::bug::BugSpec;
use crate::config::Config;
use crate::ooo::OooProcessor;
use crate::spec::SpecProcessor;
use crate::UarchError;

/// The output of correctness-formula generation: the shared expression
/// context, the formula, and the per-side state expressions (useful to the
/// rewriting-rule engine and to diagnostics).
#[derive(Debug)]
pub struct CorrectnessBundle {
    /// The expression context holding everything below.
    pub ctx: Context,
    /// The EUFM correctness formula; the processor is correct iff it is
    /// valid.
    pub formula: ExprId,
    /// `PC_Impl`: the PC after one regular step plus flushing.
    pub pc_impl: ExprId,
    /// `RegFile_Impl`: the Register File after one regular step plus
    /// flushing.
    pub rf_impl: ExprId,
    /// `PC_Spec,j` for `j in 0..=k`.
    pub pc_spec: Vec<ExprId>,
    /// `RegFile_Spec,j` for `j in 0..=k`.
    pub rf_spec: Vec<ExprId>,
    /// Simulation statistics.
    pub stats: GenStats,
}

/// Statistics from symbolic simulation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GenStats {
    /// Netlist cells in the implementation design.
    pub impl_cells: usize,
    /// Total evaluation events across all implementation-side cycles.
    pub impl_events: u64,
    /// Total evaluation events across all specification-side cycles
    /// (flushing of the initial state plus the spec machine).
    pub spec_events: u64,
    /// Distinct EUFM nodes allocated by generation.
    pub ctx_nodes: usize,
}

/// Generates the correctness formula for a bug-free processor with lazy
/// (cone-of-influence) evaluation.
///
/// # Errors
///
/// Propagates simulation failures as [`UarchError::Sim`].
pub fn generate(config: &Config) -> Result<CorrectnessBundle, UarchError> {
    generate_with(config, None, EvalStrategy::Lazy)
}

/// Generates the correctness formula with an optional seeded defect and an
/// explicit evaluation strategy.
///
/// # Errors
///
/// Returns [`UarchError::InvalidBug`] for an ill-fitting bug specification
/// and propagates simulation failures as [`UarchError::Sim`].
pub fn generate_with(
    config: &Config,
    bug: Option<BugSpec>,
    strategy: EvalStrategy,
) -> Result<CorrectnessBundle, UarchError> {
    generate_cancellable(config, bug, strategy, &CancelToken::new())
}

/// Like [`generate_with`], but every simulator polls `cancel` before each
/// symbolic step; a tripped token surfaces as
/// [`UarchError::Sim`]`(`[`tlsim::SimError::Cancelled`]`)`.
///
/// # Errors
///
/// As [`generate_with`], plus the cancellation error above.
pub fn generate_cancellable(
    config: &Config,
    bug: Option<BugSpec>,
    strategy: EvalStrategy,
    cancel: &CancelToken,
) -> Result<CorrectnessBundle, UarchError> {
    let proc = OooProcessor::build_with_bug(config, bug)?;
    let spec = SpecProcessor::build();
    let mut ctx = Context::new();
    let total = config.total_entries();
    let k = config.issue_width();

    // --- implementation side: regular step, then flush -----------------------
    let mut impl_sim = Simulator::new(proc.design(), &mut ctx, strategy)?;
    impl_sim.set_cancel(cancel.clone());
    proc.init_empty_new_entries(&mut impl_sim, &ctx);
    impl_sim.step(&mut ctx, &proc.regular_controls())?;
    for slice in 1..=total {
        impl_sim.step(&mut ctx, &proc.flush_controls(slice))?;
    }
    let pc_impl = impl_sim.latch_state(proc.pc());
    let rf_impl = impl_sim.latch_state(proc.regfile());
    let impl_events = impl_sim.total_events();

    // --- specification side: flush the initial state, then run the spec ------
    let mut abs_sim = Simulator::new(proc.design(), &mut ctx, strategy)?;
    abs_sim.set_cancel(cancel.clone());
    proc.init_empty_new_entries(&mut abs_sim, &ctx);
    for slice in 1..=total {
        abs_sim.step(&mut ctx, &proc.flush_controls(slice))?;
    }
    let pc_spec0 = abs_sim.latch_state(proc.pc());
    let rf_spec0 = abs_sim.latch_state(proc.regfile());

    let mut spec_sim = Simulator::new(spec.design(), &mut ctx, strategy)?;
    spec_sim.set_cancel(cancel.clone());
    spec_sim.set_state(&ctx, spec.pc(), pc_spec0);
    spec_sim.set_state(&ctx, spec.regfile(), rf_spec0);
    let mut pc_spec = vec![pc_spec0];
    let mut rf_spec = vec![rf_spec0];
    for _ in 0..k {
        spec_sim.step(&mut ctx, &HashMap::new())?;
        pc_spec.push(spec_sim.latch_state(spec.pc()));
        rf_spec.push(spec_sim.latch_state(spec.regfile()));
    }
    let spec_events = abs_sim.total_events() + spec_sim.total_events();

    // --- the correctness disjunction -----------------------------------------
    let mut disjuncts = Vec::with_capacity(k + 1);
    for j in 0..=k {
        let eq_pc = ctx.eq(pc_impl, pc_spec[j]);
        let eq_rf = ctx.eq(rf_impl, rf_spec[j]);
        disjuncts.push(ctx.and2(eq_pc, eq_rf));
    }
    let formula = ctx.or(disjuncts);

    let stats = GenStats {
        impl_cells: proc.design().num_signals(),
        impl_events,
        spec_events,
        ctx_nodes: ctx.len(),
    };
    Ok(CorrectnessBundle {
        ctx,
        formula,
        pc_impl,
        rf_impl,
        pc_spec,
        rf_spec,
        stats,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::names;
    use eufm::Sort;

    #[test]
    fn minimal_config_generates_a_formula() {
        let config = Config::new(1, 1).expect("config");
        let bundle = generate(&config).expect("generate");
        assert_eq!(bundle.ctx.sort(bundle.formula), Sort::Bool);
        assert_eq!(bundle.pc_spec.len(), 2);
        assert_eq!(bundle.rf_spec.len(), 2);
        assert!(bundle.stats.ctx_nodes > 10);
    }

    #[test]
    fn pc_structure_matches_the_paper() {
        // For k = 2: PC_Impl = ITE(fetch_2, N(N(PC)), ITE(fetch_1, N(PC), PC))
        let config = Config::new(3, 2).expect("config");
        let bundle = generate(&config).expect("generate");
        let mut ctx = bundle.ctx;
        let pc = ctx.tvar(names::PC);
        let npc = ctx.uf(names::NEXT_PC, vec![pc]);
        let nnpc = ctx.uf(names::NEXT_PC, vec![npc]);
        let ndf1 = ctx.pvar(&format!("{}@0", names::nd_fetch(1)));
        let ndf2 = ctx.pvar(&format!("{}@0", names::nd_fetch(2)));
        let fetch1 = ndf1;
        let fetch2 = ctx.and2(ndf1, ndf2);
        let inner = ctx.ite(fetch1, npc, pc);
        let expected = ctx.ite(fetch2, nnpc, inner);
        assert_eq!(bundle.pc_impl, expected);
        // and the spec side is PC, N(PC), N(N(PC))
        assert_eq!(bundle.pc_spec, vec![pc, npc, nnpc]);
    }

    #[test]
    fn spec_side_register_file_is_an_update_chain() {
        let config = Config::new(2, 1).expect("config");
        let bundle = generate(&config).expect("generate");
        let mut ctx = bundle.ctx;
        // RegFile_Spec,0 = updates by the 2 initial instructions over RegFile
        let rf = ctx.mvar(names::REG_FILE);
        let mut expected = rf;
        for i in 1..=2 {
            let v = ctx.pvar(&names::valid(i));
            let vr = ctx.pvar(&names::valid_result(i));
            let r = ctx.tvar(&names::result(i));
            let op = ctx.tvar(&names::opcode(i));
            let s1 = ctx.tvar(&names::src1(i));
            let s2 = ctx.tvar(&names::src2(i));
            let d = ctx.tvar(&names::dest(i));
            let prev = expected;
            let r1 = ctx.read(prev, s1);
            let r2 = ctx.read(prev, s2);
            let alu = ctx.uf(names::ALU, vec![op, r1, r2]);
            let data = ctx.ite(vr, r, alu);
            expected = ctx.update(prev, v, d, data);
        }
        assert_eq!(bundle.rf_spec[0], expected);
    }

    #[test]
    fn strategies_agree_on_the_formula() {
        let config = Config::new(2, 2).expect("config");
        let lazy = generate_with(&config, None, EvalStrategy::Lazy).expect("lazy");
        let eager = generate_with(&config, None, EvalStrategy::Eager).expect("eager");
        // The formulas are built in different contexts; compare prints.
        let sl = eufm::print::to_sexpr(&lazy.ctx, lazy.formula);
        let se = eufm::print::to_sexpr(&eager.ctx, eager.formula);
        assert_eq!(sl, se);
        assert!(lazy.stats.impl_events < eager.stats.impl_events);
    }

    #[test]
    fn cancelled_generation_reports_a_sim_error() {
        let config = Config::new(1, 1).expect("config");
        let token = CancelToken::new();
        token.cancel();
        match generate_cancellable(&config, None, EvalStrategy::Lazy, &token) {
            Err(crate::UarchError::Sim(tlsim::SimError::Cancelled)) => {}
            other => panic!("expected cancelled sim error, got {other:?}"),
        }
    }

    #[test]
    fn formula_size_grows_with_rob_size() {
        let small = generate(&Config::new(2, 1).expect("config")).expect("generate");
        let large = generate(&Config::new(6, 1).expect("config")).expect("generate");
        let ssize = small.ctx.dag_size(&[small.formula]);
        let lsize = large.ctx.dag_size(&[large.formula]);
        assert!(lsize > ssize);
    }
}
