//! The abstract out-of-order implementation processor (paper Sect. 3–4).
//!
//! The generated netlist has `N + k` reorder-buffer entry latches. The
//! first `N` hold the instructions initially in the reorder buffer; the
//! extra `k` accept newly fetched instructions. During one cycle of regular
//! operation (`flush = false`):
//!
//! - up to `k` instructions are fetched in program order, controlled by the
//!   non-deterministic `NDFetch_j` inputs (`fetch_j` is the conjunction of
//!   `NDFetch_1 .. NDFetch_j`, so a false `fetch_j` forces all later ones
//!   false);
//! - any *ready* instruction (`Valid`, result not yet computed, and both
//!   data operands readable from the Register File or forwardable from the
//!   `Result` fields of preceding entries) completes non-deterministically,
//!   controlled by `NDExecute_i`;
//! - the first `k` instructions retire in program order: instruction `i`
//!   retires if its `Valid` bit is false or its result is ready and all
//!   older instructions retire this cycle; retiring valid instructions
//!   write the Register File in program order.
//!
//! When `flush` is asserted, the completion function of one entry per cycle
//! (selected by the concrete `flush_slot_i` controls, in program order)
//! writes its result — stored if already computed, otherwise computed
//! instantaneously from operands read directly from the Register File —
//! to its destination register.

use std::collections::HashMap;

use eufm::{Context, ExprId, Sort};
use tlsim::{Design, InputId, InputKind, LatchId, SignalId};

use crate::bug::{BugSpec, Operand};
use crate::config::Config;
use crate::names;
use crate::UarchError;

/// The latches making up one reorder-buffer entry.
#[derive(Debug, Clone, Copy)]
pub struct EntryLatches {
    /// Will the instruction update the Register File?
    pub valid: LatchId,
    /// The instruction's opcode.
    pub opcode: LatchId,
    /// The destination register identifier.
    pub dest: LatchId,
    /// The first source register identifier.
    pub src1: LatchId,
    /// The second source register identifier.
    pub src2: LatchId,
    /// Has the instruction's result been computed?
    pub valid_result: LatchId,
    /// The computed result (meaningful when `valid_result`).
    pub result: LatchId,
}

/// A generated abstract out-of-order processor.
#[derive(Debug)]
pub struct OooProcessor {
    config: Config,
    bug: Option<BugSpec>,
    design: Design,
    pc: LatchId,
    regfile: LatchId,
    entries: Vec<EntryLatches>,
    flush: InputId,
    flush_slots: Vec<InputId>,
    nd_fetch: Vec<InputId>,
    nd_execute: Vec<InputId>,
}

impl OooProcessor {
    /// Generates the processor netlist for `config`.
    pub fn build(config: &Config) -> Self {
        Self::build_with_bug(config, None).expect("bug-free build cannot fail")
    }

    /// Generates the processor netlist with an optional seeded defect.
    ///
    /// # Errors
    ///
    /// Returns [`UarchError::InvalidBug`] if the bug specification does not
    /// fit the configuration.
    pub fn build_with_bug(config: &Config, bug: Option<BugSpec>) -> Result<Self, UarchError> {
        if let Some(b) = bug {
            b.validate(config)?;
        }
        let n = config.rob_size();
        let k = config.issue_width();
        let total = config.total_entries();
        let mut d = Design::new(format!("ooo_{config}"));

        // ----- inputs -------------------------------------------------------
        let flush = d.input(names::FLUSH, Sort::Bool, InputKind::Controlled);
        let flush_slots: Vec<InputId> = (1..=total)
            .map(|i| d.input(names::flush_slot(i), Sort::Bool, InputKind::Controlled))
            .collect();
        let nd_fetch: Vec<InputId> = (1..=k)
            .map(|j| d.input(names::nd_fetch(j), Sort::Bool, InputKind::FreshPerCycle))
            .collect();
        let nd_execute: Vec<InputId> = (1..=n)
            .map(|i| d.input(names::nd_execute(i), Sort::Bool, InputKind::FreshPerCycle))
            .collect();

        // ----- latches ------------------------------------------------------
        let pc = d.latch(names::PC, Sort::Term);
        let regfile = d.latch(names::REG_FILE, Sort::Mem);
        let entries: Vec<EntryLatches> = (1..=total)
            .map(|i| EntryLatches {
                valid: d.latch(names::valid(i), Sort::Bool),
                opcode: d.latch(names::opcode(i), Sort::Term),
                dest: d.latch(names::dest(i), Sort::Term),
                src1: d.latch(names::src1(i), Sort::Term),
                src2: d.latch(names::src2(i), Sort::Term),
                valid_result: d.latch(names::valid_result(i), Sort::Bool),
                result: d.latch(names::result(i), Sort::Term),
            })
            .collect();

        // Entry field output signals (0-based indexing from here on).
        let v: Vec<SignalId> = entries.iter().map(|e| d.latch_out(e.valid)).collect();
        let op: Vec<SignalId> = entries.iter().map(|e| d.latch_out(e.opcode)).collect();
        let dst: Vec<SignalId> = entries.iter().map(|e| d.latch_out(e.dest)).collect();
        let s1: Vec<SignalId> = entries.iter().map(|e| d.latch_out(e.src1)).collect();
        let s2: Vec<SignalId> = entries.iter().map(|e| d.latch_out(e.src2)).collect();
        let vr: Vec<SignalId> = entries
            .iter()
            .map(|e| d.latch_out(e.valid_result))
            .collect();
        let res: Vec<SignalId> = entries.iter().map(|e| d.latch_out(e.result)).collect();

        let pc_out = d.latch_out(pc);
        let rf_out = d.latch_out(regfile);
        let flush_sig = d.input_signal(flush);
        let slot_sigs: Vec<SignalId> = flush_slots.iter().map(|&i| d.input_signal(i)).collect();

        // ----- fetch engine ---------------------------------------------------
        // fetch_j = NDFetch_1 & ... & NDFetch_j (program-order prefix property)
        let nd_fetch_sigs: Vec<SignalId> = nd_fetch.iter().map(|&i| d.input_signal(i)).collect();
        let mut fetch: Vec<SignalId> = Vec::with_capacity(k);
        for j in 0..k {
            let sig = d.and(nd_fetch_sigs[..=j].iter().copied());
            fetch.push(sig);
            d.mark_output(format!("fetch_{}", j + 1), sig);
        }
        // Fetch addresses: a_j = NextPC^j(PC) for slot j+1.
        let mut fetch_addr: Vec<SignalId> = Vec::with_capacity(k);
        let mut addr = pc_out;
        for _ in 0..k {
            fetch_addr.push(addr);
            addr = d.uf(names::NEXT_PC, vec![addr]);
        }
        let beyond_last = addr; // NextPC^k(PC)

        // PC update: ITE(fetch_k, NextPC^k(PC), ... ITE(fetch_1, NextPC(PC), PC))
        let mut pc_regular = pc_out;
        for j in 0..k {
            let target = if j + 1 < k {
                fetch_addr[j + 1]
            } else {
                beyond_last
            };
            pc_regular = d.mux(fetch[j], target, pc_regular);
        }

        // ----- in-order retirement -------------------------------------------
        // rem_i: instruction i (1-based) leaves the ROB this cycle.
        // rem_i = (!Valid_i | ValidResult_i) & rem_{i-1}
        // write context wctx_i = Valid_i & ValidResult_i & rem_{i-1}
        let mut rem: Vec<SignalId> = Vec::with_capacity(k);
        let mut wctx: Vec<SignalId> = Vec::with_capacity(k);
        let mut prev_rem: Option<SignalId> = None;
        for i in 0..k {
            let skip_order =
                matches!(bug, Some(BugSpec::RetireOutOfOrder { slice }) if slice == i + 1);
            let ignore_valid =
                matches!(bug, Some(BugSpec::RetireIgnoresValid { slice }) if slice == i + 1);
            let nv = d.not(v[i]);
            let can = d.or2(nv, vr[i]);
            let (rem_i, wctx_i) = match (prev_rem, skip_order) {
                (Some(p), false) => {
                    let r = d.and2(can, p);
                    let w = if ignore_valid {
                        d.and2(vr[i], p)
                    } else {
                        d.and([v[i], vr[i], p])
                    };
                    (r, w)
                }
                _ => {
                    // first instruction, or in-order check skipped by bug
                    let w = if ignore_valid {
                        vr[i]
                    } else {
                        d.and2(v[i], vr[i])
                    };
                    (can, w)
                }
            };
            rem.push(rem_i);
            wctx.push(wctx_i);
            d.mark_output(format!("retire_{}", i + 1), rem_i);
            prev_rem = Some(rem_i);
        }

        // Register file after in-order retirement (regular mode).
        let mut rf_regular = rf_out;
        for i in 0..k {
            let w = d.write(rf_regular, dst[i], res[i]);
            rf_regular = d.mux(wctx[i], w, rf_regular);
        }

        // ----- out-of-order execution ----------------------------------------
        // Forwarding scan for entry i (0-based), operand `src`: the nearest
        // preceding valid entry writing `src` provides the value (available
        // once its result is computed); otherwise the Register File does.
        let scan = |d: &mut Design, i: usize, src: SignalId, operand: Operand| {
            let mut avail = d.constant(true);
            let mut val = d.read(rf_out, src);
            for j in 0..i {
                let broken = match bug {
                    Some(BugSpec::ForwardingIgnoresValidResult { slice, operand: o }) => {
                        slice == i + 1 && o == operand
                    }
                    _ => false,
                };
                let skipped = match bug {
                    Some(BugSpec::ForwardingSkipsNearest { slice, operand: o }) => {
                        slice == i + 1 && o == operand && j == i - 1
                    }
                    _ => false,
                };
                if skipped {
                    continue;
                }
                let match_addr = d.eq_cmp(dst[j], src);
                let hit = d.and2(v[j], match_addr);
                avail = if broken {
                    let t = d.constant(true);
                    d.mux(hit, t, avail)
                } else {
                    d.mux(hit, vr[j], avail)
                };
                val = d.mux(hit, res[j], val);
            }
            (avail, val)
        };

        let mut exec: Vec<SignalId> = Vec::with_capacity(n);
        let mut alu_fwd: Vec<SignalId> = Vec::with_capacity(n);
        for i in 0..n {
            let (avail1, val1) = scan(&mut d, i, s1[i], Operand::Src1);
            let (avail2, val2) = scan(&mut d, i, s2[i], Operand::Src2);
            let deps_ok = d.and2(avail1, avail2);
            let nvr = d.not(vr[i]);
            let ready = d.and([v[i], nvr, deps_ok]);
            let nd = d.input_signal(nd_execute[i]);
            let ex = d.and2(nd, ready);
            let alu = d.uf(names::ALU, vec![op[i], val1, val2]);
            exec.push(ex);
            alu_fwd.push(alu);
        }

        // ----- completion functions (flush mode) ------------------------------
        // During flush cycle t, slice t writes its (stored or instantly
        // computed) result to the Register File if still valid.
        let mut rf_flush = rf_out;
        for i in (0..total).rev() {
            let stale =
                matches!(bug, Some(BugSpec::CompletionUsesStaleResult { slice }) if slice == i + 1);
            let cdata = if stale {
                res[i]
            } else {
                let r1 = d.read(rf_out, s1[i]);
                let r2 = d.read(rf_out, s2[i]);
                let alu = d.uf(names::ALU, vec![op[i], r1, r2]);
                d.mux(vr[i], res[i], alu)
            };
            let w = d.write(rf_out, dst[i], cdata);
            let comp = d.mux(v[i], w, rf_out);
            rf_flush = d.mux(slot_sigs[i], comp, rf_flush);
        }

        // ----- instruction fields of newly fetched instructions ---------------
        let new_fields: Vec<(SignalId, SignalId, SignalId, SignalId, SignalId)> = (0..k)
            .map(|j| {
                let a = fetch_addr[j];
                let imv = d.up(names::IMEM_VALID, vec![a]);
                let nv = d.and2(imv, fetch[j]);
                (
                    nv,
                    d.uf(names::IMEM_OP, vec![a]),
                    d.uf(names::IMEM_DEST, vec![a]),
                    d.uf(names::IMEM_SRC1, vec![a]),
                    d.uf(names::IMEM_SRC2, vec![a]),
                )
            })
            .collect();

        // ----- latch next-state functions --------------------------------------
        let pc_next = d.mux(flush_sig, pc_out, pc_regular);
        d.set_next(pc, pc_next);
        let rf_next = d.mux(flush_sig, rf_flush, rf_regular);
        d.set_next(regfile, rf_next);

        let false_const = d.constant(false);
        for i in 0..total {
            // Valid: regular mode removes retired / loads fetched; flush mode
            // clears the active slice after completion.
            let v_regular = if i < k {
                let nrem = d.not(rem[i]);
                d.and2(v[i], nrem)
            } else if i < n {
                v[i]
            } else {
                new_fields[i - n].0
            };
            let nslot = d.not(slot_sigs[i]);
            let v_flush = d.and2(v[i], nslot);
            let v_next = d.mux(flush_sig, v_flush, v_regular);
            d.set_next(entries[i].valid, v_next);

            // ValidResult / Result: regular mode may complete execution;
            // new entries load "not computed"; flush holds.
            let (vr_regular, r_regular) = if i < n {
                let vr_r = d.or2(vr[i], exec[i]);
                let r_r = d.mux(exec[i], alu_fwd[i], res[i]);
                (vr_r, r_r)
            } else {
                (false_const, res[i])
            };
            let vr_next = d.mux(flush_sig, vr[i], vr_regular);
            let r_next = d.mux(flush_sig, res[i], r_regular);
            d.set_next(entries[i].valid_result, vr_next);
            d.set_next(entries[i].result, r_next);

            // Instruction fields: held, except new entries load the fetched
            // instruction in regular mode.
            let (op_r, dst_r, s1_r, s2_r) = if i < n {
                (op[i], dst[i], s1[i], s2[i])
            } else {
                let f = &new_fields[i - n];
                (f.1, f.2, f.3, f.4)
            };
            let op_next = d.mux(flush_sig, op[i], op_r);
            let dst_next = d.mux(flush_sig, dst[i], dst_r);
            let s1_next = d.mux(flush_sig, s1[i], s1_r);
            let s2_next = d.mux(flush_sig, s2[i], s2_r);
            d.set_next(entries[i].opcode, op_next);
            d.set_next(entries[i].dest, dst_next);
            d.set_next(entries[i].src1, s1_next);
            d.set_next(entries[i].src2, s2_next);
        }

        Ok(OooProcessor {
            config: *config,
            bug,
            design: d,
            pc,
            regfile,
            entries,
            flush,
            flush_slots,
            nd_fetch,
            nd_execute,
        })
    }

    /// The processor's configuration.
    pub fn config(&self) -> &Config {
        &self.config
    }

    /// The seeded defect, if any.
    pub fn bug(&self) -> Option<BugSpec> {
        self.bug
    }

    /// The generated netlist.
    pub fn design(&self) -> &Design {
        &self.design
    }

    /// The program-counter latch.
    pub fn pc(&self) -> LatchId {
        self.pc
    }

    /// The register-file latch.
    pub fn regfile(&self) -> LatchId {
        self.regfile
    }

    /// The reorder-buffer entry latches (`N + k` of them, program order).
    pub fn entries(&self) -> &[EntryLatches] {
        &self.entries
    }

    /// The non-deterministic fetch-control inputs (`NDFetch_1..NDFetch_k`).
    pub fn nd_fetch_inputs(&self) -> &[InputId] {
        &self.nd_fetch
    }

    /// The non-deterministic execution-control inputs
    /// (`NDExecute_1..NDExecute_N`).
    pub fn nd_execute_inputs(&self) -> &[InputId] {
        &self.nd_execute
    }

    /// Control assignments for one cycle of regular operation.
    pub fn regular_controls(&self) -> HashMap<InputId, ExprId> {
        let mut m = HashMap::new();
        m.insert(self.flush, Context::FALSE);
        for &slot in &self.flush_slots {
            m.insert(slot, Context::FALSE);
        }
        m
    }

    /// Control assignments for one flush cycle activating the completion
    /// function of 1-based `slice`.
    ///
    /// # Panics
    ///
    /// Panics if `slice` is not in `1..=N+k`.
    pub fn flush_controls(&self, slice: usize) -> HashMap<InputId, ExprId> {
        assert!(
            (1..=self.config.total_entries()).contains(&slice),
            "flush slice {slice} out of range"
        );
        let mut m = HashMap::new();
        m.insert(self.flush, Context::TRUE);
        for (idx, &slot) in self.flush_slots.iter().enumerate() {
            m.insert(
                slot,
                if idx + 1 == slice {
                    Context::TRUE
                } else {
                    Context::FALSE
                },
            );
        }
        m
    }

    /// Initializes the newly-fetched-entry latches of a simulator to empty
    /// (their `Valid` bits to false), as the abstraction requires.
    pub fn init_empty_new_entries(&self, sim: &mut tlsim::Simulator<'_>, ctx: &Context) {
        let n = self.config.rob_size();
        for entry in &self.entries[n..] {
            sim.set_state(ctx, entry.valid, Context::FALSE);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tlsim::{EvalStrategy, Simulator};

    #[test]
    fn netlist_sizes_scale_with_config() {
        let small = OooProcessor::build(&Config::new(2, 1).expect("config"));
        let large = OooProcessor::build(&Config::new(8, 2).expect("config"));
        assert!(large.design().num_signals() > small.design().num_signals());
        assert_eq!(small.design().num_latches(), 2 + 7 * 3); // PC, RF, 3 entries
        assert_eq!(large.design().num_latches(), 2 + 7 * 10);
    }

    #[test]
    fn regular_step_runs() {
        let p = OooProcessor::build(&Config::new(3, 2).expect("config"));
        let mut ctx = Context::new();
        let mut sim = Simulator::new(p.design(), &mut ctx, EvalStrategy::Lazy).expect("sim");
        p.init_empty_new_entries(&mut sim, &ctx);
        sim.step(&mut ctx, &p.regular_controls()).expect("step");
        // PC must now be an ITE over the fetch signals.
        let pc = sim.latch_state(p.pc());
        assert!(matches!(ctx.node(pc), eufm::Node::Ite(..)));
    }

    #[test]
    fn flush_updates_one_slice_per_cycle() {
        let p = OooProcessor::build(&Config::new(2, 1).expect("config"));
        let mut ctx = Context::new();
        let mut sim = Simulator::new(p.design(), &mut ctx, EvalStrategy::Lazy).expect("sim");
        p.init_empty_new_entries(&mut sim, &ctx);
        let rf0 = sim.latch_state(p.regfile());
        sim.step(&mut ctx, &p.flush_controls(1)).expect("flush 1");
        let rf1 = sim.latch_state(p.regfile());
        assert_ne!(rf0, rf1, "slice 1 must update the register file");
        // PC must be untouched by flushing.
        let pc = sim.latch_state(p.pc());
        assert_eq!(pc, ctx.tvar(names::PC));
        // Valid_1 must be cleared after its slice completes.
        let v1 = sim.latch_state(p.entries()[0].valid);
        assert!(ctx.is_false(v1));
    }

    #[test]
    fn lazy_flush_is_much_cheaper_than_regular_step() {
        let p = OooProcessor::build(&Config::new(16, 2).expect("config"));
        let mut ctx = Context::new();
        let mut sim = Simulator::new(p.design(), &mut ctx, EvalStrategy::Lazy).expect("sim");
        p.init_empty_new_entries(&mut sim, &ctx);
        let regular = sim.step(&mut ctx, &p.regular_controls()).expect("step");
        let flush = sim.step(&mut ctx, &p.flush_controls(1)).expect("flush");
        assert!(
            flush.events * 4 < regular.events,
            "flush events {} should be far below regular events {}",
            flush.events,
            regular.events
        );
    }

    #[test]
    fn bug_validation_is_enforced() {
        let config = Config::new(4, 2).expect("config");
        let bad = BugSpec::paper_variant(); // slice 72 does not fit
        assert!(OooProcessor::build_with_bug(&config, Some(bad)).is_err());
        let ok = BugSpec::ForwardingIgnoresValidResult {
            slice: 3,
            operand: Operand::Src1,
        };
        assert!(OooProcessor::build_with_bug(&config, Some(ok)).is_ok());
    }

    #[test]
    fn buggy_design_differs_from_correct_one() {
        let config = Config::new(4, 2).expect("config");
        let good = OooProcessor::build(&config);
        let bad = OooProcessor::build_with_bug(
            &config,
            Some(BugSpec::ForwardingIgnoresValidResult {
                slice: 3,
                operand: Operand::Src1,
            }),
        )
        .expect("build");
        let mut ctx_g = Context::new();
        let mut ctx_b = Context::new();
        let mut sim_g = Simulator::new(good.design(), &mut ctx_g, EvalStrategy::Lazy).expect("sim");
        let mut sim_b = Simulator::new(bad.design(), &mut ctx_b, EvalStrategy::Lazy).expect("sim");
        good.init_empty_new_entries(&mut sim_g, &ctx_g);
        bad.init_empty_new_entries(&mut sim_b, &ctx_b);
        sim_g
            .step(&mut ctx_g, &good.regular_controls())
            .expect("step");
        sim_b
            .step(&mut ctx_b, &bad.regular_controls())
            .expect("step");
        // The third entry's result expression must differ (stale forward).
        let rg = eufm::print::to_sexpr(&ctx_g, sim_g.latch_state(good.entries()[2].result));
        let rb = eufm::print::to_sexpr(&ctx_b, sim_b.latch_state(bad.entries()[2].result));
        assert_ne!(rg, rb);
    }
}
