//! Campaign smoke test: a 2×2 sweep (ROB sizes {2, 4} × widths {1, 2})
//! under both translation strategies, run on the parallel orchestrator
//! with JSONL telemetry going to stdout.
//!
//! ```text
//! cargo run --release --example campaign_smoke
//! ```
//!
//! Exits nonzero if any configuration fails to verify.

use std::io::stdout;

use campaign::{Campaign, JsonlSink, Sweep};
use rob_verify::Strategy;

fn main() {
    let sweep = Sweep::new([2usize, 4], [1usize, 2]).strategies([
        Strategy::RewritingAndPositiveEquality,
        Strategy::PositiveEqualityOnly,
    ]);
    let sink = JsonlSink::new(stdout());
    let outcome = Campaign::from_sweep(&sweep).workers(4).run(&sink);

    eprint!("{}", outcome.report.render());
    assert_eq!(
        outcome.results.len(),
        8,
        "2 sizes x 2 widths x 2 strategies"
    );
    assert!(
        outcome.all_expected() && outcome.report.verified == 8,
        "every configuration must verify: {:?}",
        outcome.report
    );
    eprintln!(
        "campaign smoke: all {} jobs verified",
        outcome.report.verified
    );
}
