//! The paper's Fig. 2 as a runnable artifact.
//!
//! Generates the correctness formula for a 3-entry reorder buffer with
//! issue/retire width 2, prints the Register-File update chains of both
//! diagram sides (Fig. 2a), applies the rewriting rules, and prints the
//! surviving implementation-side chain over `RegFile_equal_state`
//! (Fig. 2b).
//!
//! ```text
//! cargo run --release --example update_chains
//! ```

use evc::chain;
use evc::rewrite::{rewrite_correctness, RewriteInput, RewriteOptions};
use rob_verify::Config;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let config = Config::new(3, 2)?;
    let mut bundle = rob_verify::generate_correctness(&config)?;

    println!("=== Fig. 2a — specification side (RegFile_Spec,0: the flushed initial state)\n");
    let spec_chain = chain::parse(&bundle.ctx, bundle.rf_spec[0])?;
    println!("{}", spec_chain.render(&bundle.ctx));

    println!("=== Fig. 2a — implementation side (one regular cycle, then flushing)\n");
    let input = RewriteInput {
        formula: bundle.formula,
        rf_impl: bundle.rf_impl,
        rf_spec0: bundle.rf_spec[0],
    };
    let options = RewriteOptions {
        render_chains: true,
        ..RewriteOptions::default()
    };
    let outcome = rewrite_correctness(&mut bundle.ctx, &input, &options)?;
    if let Some(before) = &outcome.impl_chain_before {
        println!("{before}");
    }

    println!("=== Fig. 2b — after the rewriting rules\n");
    println!(
        "{} slices proved equal along both sides ({} retire-width pairs merged),",
        outcome.slices, outcome.retire_pairs
    );
    println!("equal prefixes replaced by `RegFile_equal_state`:\n");
    if let Some(after) = &outcome.impl_chain_after {
        println!("{after}");
    }
    println!(
        "obligations discharged: {} ({} syntactically)",
        outcome.obligations, outcome.syntactic_hits
    );
    Ok(())
}
