//! The paper's buggy-variant experiment (Sect. 7.2).
//!
//! A forwarding defect is injected into one data operand of the 72nd
//! instruction of a 128-entry, issue-width-4 reorder buffer. The rewriting
//! rules identify the 72nd computation slice as "not conforming to the
//! expected expression structure" in seconds, while the
//! Positive-Equality-only translation exhausts its budget (the paper's EVC
//! ran out of 4 GB of memory after 6,100 seconds).
//!
//! ```text
//! cargo run --release --example bug_hunt
//! ```

use std::time::Instant;

use rob_verify::{BugSpec, Config, Limits, Strategy, Verdict, Verifier};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let config = Config::new(128, 4)?;
    let bug = BugSpec::paper_variant(); // forwarding bug, operand 2, slice 72
    println!("injected bug: {bug:?}\n");

    // --- rewriting rules: fast, localized diagnosis --------------------------
    let t = Instant::now();
    let verification = Verifier::new(config)
        .bug(bug)
        .strategy(Strategy::RewritingAndPositiveEquality)
        .run()?;
    let rewriting_time = t.elapsed();
    match &verification.verdict {
        Verdict::SliceDiagnosis { slice, reason } => {
            println!("rewriting rules: identified computation slice {slice} in {rewriting_time:?}");
            println!("                 ({reason})");
        }
        other => println!("rewriting rules: unexpected verdict {other:?}"),
    }

    // --- Positive Equality alone: exhausts its budget -------------------------
    println!("\nPositive Equality alone (translation capped at 3M nodes, SAT at 60 s):");
    let t = Instant::now();
    let verification = Verifier::new(config)
        .bug(bug)
        .strategy(Strategy::PositiveEqualityOnly)
        .max_nodes(3_000_000)
        .sat_limits(Limits {
            max_seconds: Some(60.0),
            ..Limits::none()
        })
        .run()?;
    match &verification.verdict {
        Verdict::ResourceLimit(what) => {
            println!("                 gave up after {:?} ({what})", t.elapsed());
            println!("                 — the paper's EVC ran out of 4 GB after 6,100 s here");
        }
        Verdict::Falsified { .. } => {
            println!(
                "                 falsified after {:?} (no localization)",
                t.elapsed()
            );
        }
        other => println!("                 unexpected verdict {other:?}"),
    }
    Ok(())
}
