//! The headline result as a race: Positive Equality alone vs rewriting
//! rules + Positive Equality, over growing reorder buffers.
//!
//! Reproduces the *shape* of the paper's Tables 2 and 4/5: the PE-only
//! flow blows up around 8–16 reorder-buffer entries while the rewriting
//! flow's SAT work stays constant — the source of the reported five orders
//! of magnitude.
//!
//! ```text
//! cargo run --release --example scaling_race -- [max_size]
//! ```

use std::time::Instant;

use rob_verify::{Config, Limits, Strategy, Verdict, Verifier};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().collect();
    let max_size: usize = args.get(1).map_or(Ok(32), |s| s.parse())?;
    let width = 2;

    println!(
        "{:>6} | {:>16} | {:>16} | {:>8}",
        "size", "PE only", "rewriting + PE", "speedup"
    );
    println!("{:->6}-+-{:->16}-+-{:->16}-+-{:->8}", "", "", "", "");

    let mut size = 2;
    let mut pe_alive = true;
    while size <= max_size {
        let config = Config::new(size, width)?;

        let pe_cell = if pe_alive {
            let t = Instant::now();
            let v = Verifier::new(config)
                .strategy(Strategy::PositiveEqualityOnly)
                .max_nodes(10_000_000)
                .sat_limits(Limits {
                    max_seconds: Some(120.0),
                    ..Limits::none()
                })
                .run()?;
            match v.verdict {
                Verdict::Verified => Some(t.elapsed()),
                Verdict::ResourceLimit(_) => {
                    pe_alive = false;
                    None
                }
                other => {
                    println!("unexpected PE-only verdict at size {size}: {other:?}");
                    return Ok(());
                }
            }
        } else {
            None
        };

        let t = Instant::now();
        let v = Verifier::new(config)
            .strategy(Strategy::RewritingAndPositiveEquality)
            .run()?;
        let rw = t.elapsed();
        if v.verdict != Verdict::Verified {
            println!(
                "unexpected rewriting verdict at size {size}: {:?}",
                v.verdict
            );
            return Ok(());
        }

        match pe_cell {
            Some(pe) => {
                let speedup = pe.as_secs_f64() / rw.as_secs_f64().max(1e-9);
                println!("{size:>6} | {pe:>16.2?} | {rw:>16.2?} | {speedup:>7.0}x");
            }
            None => println!("{size:>6} | {:>16} | {rw:>16.2?} | {:>8}", "> budget", "—"),
        }
        size *= 2;
    }
    Ok(())
}
