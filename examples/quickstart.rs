//! Quick start: verify an out-of-order processor with a reorder buffer.
//!
//! ```text
//! cargo run --release --example quickstart -- [rob_size] [issue_width]
//! ```

use rob_verify::{Config, Strategy, Verifier};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().collect();
    let rob_size: usize = args.get(1).map_or(Ok(16), |s| s.parse())?;
    let issue_width: usize = args.get(2).map_or(Ok(4), |s| s.parse())?;
    let config = Config::new(rob_size, issue_width)?;

    println!("verifying an out-of-order processor: {rob_size}-entry reorder buffer, ");
    println!("issue/retire width {issue_width}, against its ISA specification\n");

    let verification = Verifier::new(config)
        .strategy(Strategy::RewritingAndPositiveEquality)
        .run()?;

    println!("verdict:              {:?}", verification.verdict);
    println!("formula generation:   {:?}", verification.timings.generate);
    println!("rewriting rules:      {:?}", verification.timings.rewrite);
    println!("EUFM -> CNF:          {:?}", verification.timings.translate);
    println!("SAT (Chaff-style):    {:?}", verification.timings.sat);
    println!();
    println!("EUFM nodes:           {}", verification.stats.formula_nodes);
    println!(
        "rewrite obligations:  {} ({} syntactic)",
        verification.stats.rewrite_obligations, verification.stats.rewrite_syntactic
    );
    println!(
        "e_ij variables:       {} (rewriting removes them all)",
        verification.stats.eij_vars
    );
    println!(
        "CNF:                  {} vars, {} clauses",
        verification.stats.cnf_vars, verification.stats.cnf_clauses
    );
    Ok(())
}
