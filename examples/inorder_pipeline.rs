//! The classical in-order pipelined benchmark — the setting where
//! Positive Equality alone already works (the paper's predecessor line),
//! contrasted with the out-of-order core where it does not.
//!
//! ```text
//! cargo run --release --example inorder_pipeline
//! ```

use evc::check::{check_validity, CheckOptions};
use evc::mem::MemoryModel;
use uarch::pipeline::{generate_pipeline_correctness, PipelineBug};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let options = CheckOptions {
        memory: MemoryModel::Forwarding,
        ..CheckOptions::default()
    };

    println!("three-stage in-order pipeline with full forwarding, verified by");
    println!("Positive Equality alone (no rewriting rules needed):\n");

    let (mut ctx, formula) = generate_pipeline_correctness(None)?;
    let report = check_validity(&mut ctx, formula, &options);
    println!(
        "correct design:  {:?}  ({} e_ij vars, {} CNF clauses, {:?} total)",
        report.outcome,
        report.stats.eij_vars,
        report.stats.cnf_clauses,
        report.translate_time + report.sat_time
    );

    for bug in [
        PipelineBug::MissingExForwarding,
        PipelineBug::MissingWbForwarding,
        PipelineBug::ForwardsFromWrongStage,
        PipelineBug::WritebackIgnoresValid,
    ] {
        let (mut ctx, formula) = generate_pipeline_correctness(Some(bug))?;
        let report = check_validity(&mut ctx, formula, &options);
        let verdict = if report.outcome.is_invalid() {
            "falsified ✓"
        } else {
            "MISSED ✗"
        };
        println!("{bug:?}: {verdict}");
    }
    Ok(())
}
