//! Term-core guard: pins the observable outputs that the arena-interned
//! term core must never change.
//!
//! The flat-arena `eufm::Context` is an internal representation choice;
//! everything downstream — memo stores, `JobKey` cache fingerprints,
//! Table-1 statistics, the Fig. 2 correctness formula — is defined by
//! *structure*, not layout. This suite pins those observables to the values
//! committed in `BENCH_5.json` (the last pre-arena profile) so any
//! representation change that leaks into semantics fails loudly in CI
//! (the `term-core-guard` job) rather than silently invalidating persisted
//! caches or drifting the paper tables.

use eufm::digest::{digest_hex, Digester};
use rob_verify::{Config, Verdict, VerificationStats, Verifier};

/// One committed Table-1 cell: `(rob_size, issue_width)` → the exact
/// statistics recorded in `BENCH_5.json` for the rewrite+PE strategy.
struct Cell {
    n: usize,
    k: usize,
    formula_nodes: usize,
    rewrite_obligations: usize,
    rewrite_syntactic: usize,
}

/// Per-width statistics: with rewriting, the paper's point (Table 5) is
/// that the propositional core does not depend on the reorder-buffer size,
/// so these are shared by every cell of the same issue width.
struct WidthProfile {
    k: usize,
    cnf_vars: usize,
    cnf_clauses: usize,
    other_vars: usize,
    sat_conflicts: u64,
    sat_decisions: u64,
    sat_propagations: u64,
}

const WIDTH_PROFILES: &[WidthProfile] = &[
    WidthProfile {
        k: 1,
        cnf_vars: 9,
        cnf_clauses: 15,
        other_vars: 2,
        sat_conflicts: 3,
        sat_decisions: 2,
        sat_propagations: 14,
    },
    WidthProfile {
        k: 2,
        cnf_vars: 24,
        cnf_clauses: 56,
        other_vars: 4,
        sat_conflicts: 13,
        sat_decisions: 14,
        sat_propagations: 103,
    },
    WidthProfile {
        k: 4,
        cnf_vars: 58,
        cnf_clauses: 184,
        other_vars: 8,
        sat_conflicts: 62,
        sat_decisions: 83,
        sat_propagations: 938,
    },
];

const CELLS: &[Cell] = &[
    Cell {
        n: 2,
        k: 1,
        formula_nodes: 119,
        rewrite_obligations: 10,
        rewrite_syntactic: 7,
    },
    Cell {
        n: 2,
        k: 2,
        formula_nodes: 171,
        rewrite_obligations: 14,
        rewrite_syntactic: 8,
    },
    Cell {
        n: 4,
        k: 1,
        formula_nodes: 237,
        rewrite_obligations: 18,
        rewrite_syntactic: 15,
    },
    Cell {
        n: 4,
        k: 2,
        formula_nodes: 295,
        rewrite_obligations: 22,
        rewrite_syntactic: 16,
    },
    Cell {
        n: 4,
        k: 4,
        formula_nodes: 429,
        rewrite_obligations: 33,
        rewrite_syntactic: 18,
    },
    Cell {
        n: 8,
        k: 1,
        formula_nodes: 593,
        rewrite_obligations: 34,
        rewrite_syntactic: 31,
    },
    Cell {
        n: 8,
        k: 2,
        formula_nodes: 663,
        rewrite_obligations: 38,
        rewrite_syntactic: 32,
    },
    Cell {
        n: 8,
        k: 4,
        formula_nodes: 821,
        rewrite_obligations: 49,
        rewrite_syntactic: 34,
    },
    Cell {
        n: 16,
        k: 1,
        formula_nodes: 1785,
        rewrite_obligations: 66,
        rewrite_syntactic: 63,
    },
    Cell {
        n: 16,
        k: 2,
        formula_nodes: 1879,
        rewrite_obligations: 70,
        rewrite_syntactic: 64,
    },
    Cell {
        n: 16,
        k: 4,
        formula_nodes: 2085,
        rewrite_obligations: 81,
        rewrite_syntactic: 66,
    },
];

fn expected_stats(cell: &Cell) -> VerificationStats {
    let w = WIDTH_PROFILES
        .iter()
        .find(|w| w.k == cell.k)
        .expect("width profile");
    VerificationStats {
        eij_vars: 0,
        other_vars: w.other_vars,
        cnf_vars: w.cnf_vars,
        cnf_clauses: w.cnf_clauses,
        formula_nodes: cell.formula_nodes,
        sat_conflicts: w.sat_conflicts,
        sat_decisions: w.sat_decisions,
        sat_propagations: w.sat_propagations,
        rewrite_obligations: cell.rewrite_obligations,
        rewrite_syntactic: cell.rewrite_syntactic,
        retire_pairs: cell.k,
        proof_checked: None,
    }
}

/// Every committed ≤16×4 Table-1 cell reproduces the exact `BENCH_5.json`
/// statistics, field for field.
#[test]
fn table1_cells_match_committed_stats() {
    for cell in CELLS {
        let config = Config::new(cell.n, cell.k).expect("config");
        let v = Verifier::new(config).run().expect("run");
        assert_eq!(
            v.verdict,
            Verdict::Verified,
            "rob{}xw{} must verify",
            cell.n,
            cell.k
        );
        assert_eq!(
            v.stats,
            expected_stats(cell),
            "rob{}xw{} stats drifted from BENCH_5.json",
            cell.n,
            cell.k
        );
    }
}

/// The Fig. 2 (3-entry, width-2) correctness formula is structurally
/// pinned: its digest — the value the memo store and `JobKey` cache would
/// persist — must never change under representation refactors.
#[test]
fn fig2_formula_digest_is_pinned() {
    let config = Config::new(3, 2).expect("config");
    let bundle = rob_verify::generate_correctness(&config).expect("generate");
    let mut d = Digester::new();
    assert_eq!(
        digest_hex(d.digest(&bundle.ctx, bundle.formula)),
        "b7d24c2f7f727e0ef4135cf7d063d0f9",
        "Fig. 2 correctness-formula digest drifted"
    );
    assert_eq!(
        digest_hex(d.digest(&bundle.ctx, bundle.rf_impl)),
        "4593956be6cda310d1413b72e115fbfd",
        "Fig. 2 implementation register-file chain digest drifted"
    );
    assert_eq!(
        digest_hex(d.digest(&bundle.ctx, bundle.rf_spec[0])),
        "04bb80bb4fc26e1c1ba9f6bc116a59ee",
        "Fig. 2 specification register-file chain digest drifted"
    );
}

/// The Fig. 2 configuration's end-to-end statistics, pinned like the
/// Table-1 cells (3 is not a Table-1 row, but it is *the* worked example
/// of the paper and the one the structure tests dissect).
#[test]
fn fig2_verification_stats_are_pinned() {
    let config = Config::new(3, 2).expect("config");
    let v = Verifier::new(config).run().expect("run");
    assert_eq!(v.verdict, Verdict::Verified);
    assert_eq!(v.stats.eij_vars, 0);
    assert_eq!(v.stats.retire_pairs, 2);
    let w2 = &WIDTH_PROFILES[1];
    assert_eq!(v.stats.cnf_vars, w2.cnf_vars);
    assert_eq!(v.stats.cnf_clauses, w2.cnf_clauses);
}

/// Verification with auditing enabled stays lint-clean on the Fig. 2
/// example: the arena produces well-formed DAGs end to end.
#[test]
fn fig2_audit_is_clean() {
    let config = Config::new(3, 2).expect("config");
    let v = Verifier::new(config).audit(true).run().expect("run");
    assert_eq!(v.verdict, Verdict::Verified);
    let errors = lint::error_count(&v.diagnostics);
    assert_eq!(
        errors,
        0,
        "audit diagnostics on Fig. 2: {}",
        lint::render_all(&v.diagnostics)
    );
}
