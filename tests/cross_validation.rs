//! Cross-validation of the whole verification stack against independent
//! semantic ground truth:
//!
//! - the brute-force interpretation oracle must agree with the SAT-based
//!   pipeline on tiny configurations (both verdict directions);
//! - the two translation strategies must agree with each other;
//! - mutation coverage: seeded defects must flip the verdict everywhere.

use eufm::oracle::{check_sampled, OracleResult};
use rob_verify::{BugSpec, Config, Operand, Strategy, Verdict, Verifier};

/// Oracle verdict on the raw EUFM correctness formula.
fn oracle_verdict(config: Config, bug: Option<BugSpec>) -> bool {
    let bundle = uarch::correctness::generate_with(&config, bug, tlsim::EvalStrategy::Lazy)
        .expect("generate");
    match check_sampled(&bundle.ctx, bundle.formula, 1500) {
        OracleResult::Valid => true,
        OracleResult::Invalid(_) => false,
        OracleResult::Unsupported(msg) => panic!("oracle unsupported: {msg}"),
    }
}

fn pipeline_verdict(config: Config, bug: Option<BugSpec>, strategy: Strategy) -> bool {
    let mut verifier = Verifier::new(config).strategy(strategy);
    if let Some(b) = bug {
        verifier = verifier.bug(b);
    }
    match verifier.run().expect("run").verdict {
        Verdict::Verified => true,
        Verdict::Falsified { .. } | Verdict::SliceDiagnosis { .. } => false,
        Verdict::ResourceLimit(what) => panic!("unexpected resource limit: {what}"),
    }
}

#[test]
fn oracle_and_pipeline_agree_on_correct_designs() {
    for (n, k) in [(1, 1), (2, 1), (2, 2), (3, 2)] {
        let config = Config::new(n, k).expect("config");
        assert!(oracle_verdict(config, None), "oracle rob{n}xw{k}");
        assert!(
            pipeline_verdict(config, None, Strategy::PositiveEqualityOnly),
            "PE-only rob{n}xw{k}"
        );
        assert!(
            pipeline_verdict(config, None, Strategy::RewritingAndPositiveEquality),
            "rewriting rob{n}xw{k}"
        );
    }
}

#[test]
fn oracle_and_pipeline_agree_on_buggy_designs() {
    let cases = [
        (
            3,
            2,
            BugSpec::ForwardingIgnoresValidResult {
                slice: 2,
                operand: Operand::Src1,
            },
        ),
        (3, 2, BugSpec::RetireOutOfOrder { slice: 2 }),
        (2, 2, BugSpec::RetireIgnoresValid { slice: 2 }),
        (3, 1, BugSpec::CompletionUsesStaleResult { slice: 2 }),
    ];
    for (n, k, bug) in cases {
        let config = Config::new(n, k).expect("config");
        assert!(
            !oracle_verdict(config, Some(bug)),
            "oracle must falsify {bug:?}"
        );
        assert!(
            !pipeline_verdict(config, Some(bug), Strategy::PositiveEqualityOnly),
            "PE-only must refute {bug:?}"
        );
        assert!(
            !pipeline_verdict(config, Some(bug), Strategy::RewritingAndPositiveEquality),
            "rewriting must refute {bug:?}"
        );
    }
}

#[test]
fn strategies_agree_across_a_grid() {
    for (n, k) in [(1, 1), (2, 1), (2, 2), (3, 1), (3, 3)] {
        let config = Config::new(n, k).expect("config");
        let pe = pipeline_verdict(config, None, Strategy::PositiveEqualityOnly);
        let rw = pipeline_verdict(config, None, Strategy::RewritingAndPositiveEquality);
        assert_eq!(pe, rw, "strategies disagree on rob{n}xw{k}");
    }
}

#[test]
fn forwarding_bug_position_sweep() {
    // Move the defect across the buffer; the diagnosis must track it.
    let config = Config::new(5, 2).expect("config");
    for slice in 2..=5 {
        let bug = BugSpec::ForwardingIgnoresValidResult {
            slice,
            operand: Operand::Src2,
        };
        let v = Verifier::new(config).bug(bug).run().expect("run");
        match v.verdict {
            Verdict::SliceDiagnosis { slice: got, .. } => assert_eq!(got, slice),
            other => panic!("slice {slice} not diagnosed: {other:?}"),
        }
    }
}

#[test]
fn rewritten_formula_passes_the_sampling_oracle() {
    // The rewritten (simplified) formula must itself be semantically valid:
    // the prefix replacement is conservative but must not break validity on
    // correct designs.
    use evc::rewrite::{rewrite_correctness, RewriteInput, RewriteOptions};
    for (n, k) in [(2, 1), (3, 2), (4, 2)] {
        let config = Config::new(n, k).expect("config");
        let mut bundle = uarch::correctness::generate(&config).expect("generate");
        let input = RewriteInput {
            formula: bundle.formula,
            rf_impl: bundle.rf_impl,
            rf_spec0: bundle.rf_spec[0],
        };
        let outcome = rewrite_correctness(&mut bundle.ctx, &input, &RewriteOptions::default())
            .expect("rewrite");
        let verdict = check_sampled(&bundle.ctx, outcome.formula, 800);
        assert!(
            verdict.is_valid(),
            "rewritten formula falsified for rob{n}xw{k}: {verdict:?}"
        );
    }
}
