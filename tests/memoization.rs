//! Memo-equivalence acceptance tests: a warm run that replays obligation
//! discharges, Positive-Equality classifications, and main-solve verdicts
//! out of a shared [`rob_verify::memo`] store must be observably identical
//! to a cold run — same verdict, field-for-field identical statistics —
//! on both a clean configuration and a seeded-bug configuration.
//!
//! These tests compare [`Verification`] values, not global metrics, so
//! they need no exclusive metrics window (exact-counter pins live in
//! `tests/observability.rs`).

use rob_verify::{BugSpec, Config, Operand, Verdict, Verifier};

/// Fig. 2's 3-entry, width-2 processor — the paper's running example.
fn fig2_config() -> Config {
    Config::new(3, 2).expect("config")
}

#[test]
fn warm_run_is_field_identical_on_fig2() {
    // Cold reference run with no store bound at all: the baseline every
    // memoized run must be indistinguishable from.
    let cold = Verifier::new(fig2_config())
        .audit(false)
        .run()
        .expect("cold run");
    assert_eq!(cold.verdict, Verdict::Verified);

    // Populating run: misses everywhere, fills the store, and must
    // already match the unmemoized baseline exactly.
    let store = rob_verify::memo_handle();
    let populate = Verifier::new(fig2_config())
        .audit(false)
        .memo(store.clone())
        .run()
        .expect("populating run");
    assert_eq!(populate.verdict, cold.verdict);
    assert_eq!(populate.stats, cold.stats);
    assert_eq!(populate.degraded, cold.degraded);
    let after_populate = store.stats();
    assert!(
        after_populate.misses > 0 && after_populate.entries > 0,
        "populating run never consulted the store: {after_populate:?}"
    );

    // Warm run: replays out of the store, and the replay must be
    // invisible in everything the caller can observe.
    let warm = Verifier::new(fig2_config())
        .audit(false)
        .memo(store.clone())
        .run()
        .expect("warm run");
    let after_warm = store.stats();
    assert!(
        after_warm.hits > after_populate.hits,
        "warm run hit nothing: {after_warm:?}"
    );
    // The main-solve verdict in particular must have been replayed
    // (kind index 2 = solve), not just rewrite obligations.
    assert!(
        after_warm.by_kind[2].0 > after_populate.by_kind[2].0,
        "warm run re-solved the main formula: {after_warm:?}"
    );
    assert_eq!(warm.verdict, cold.verdict);
    assert_eq!(warm.stats, cold.stats);
    assert_eq!(warm.degraded, cold.degraded);
}

#[test]
fn warm_run_is_field_identical_on_seeded_bug() {
    // The seeded forwarding bug from the core test suite: the default
    // strategy diagnoses it to its slice via a *failed* rewrite
    // obligation, so this exercises memoized `false` verdicts — the
    // soundness-critical direction (a stale `true` would hide a bug; a
    // replayed `false` must still point at the same slice).
    let config = Config::new(5, 2).expect("config");
    let bug = BugSpec::ForwardingIgnoresValidResult {
        slice: 3,
        operand: Operand::Src1,
    };

    let cold = Verifier::new(config)
        .audit(false)
        .bug(bug)
        .run()
        .expect("cold run");
    match cold.verdict {
        Verdict::SliceDiagnosis { slice, .. } => assert_eq!(slice, 3),
        ref other => panic!("expected diagnosis, got {other:?}"),
    }

    let store = rob_verify::memo_handle();
    let populate = Verifier::new(config)
        .audit(false)
        .bug(bug)
        .memo(store.clone())
        .run()
        .expect("populating run");
    assert_eq!(populate.verdict, cold.verdict);
    assert_eq!(populate.stats, cold.stats);
    let after_populate = store.stats();

    let warm = Verifier::new(config)
        .audit(false)
        .bug(bug)
        .memo(store.clone())
        .run()
        .expect("warm run");
    let after_warm = store.stats();
    assert!(
        after_warm.hits > after_populate.hits,
        "warm run hit nothing: {after_warm:?}"
    );
    assert_eq!(warm.verdict, cold.verdict);
    assert_eq!(warm.stats, cold.stats);
    assert_eq!(warm.degraded, cold.degraded);
}

#[test]
fn distinct_configs_do_not_cross_contaminate() {
    // One store shared across different configurations — the sweep
    // sharing model. Every verdict must match its own unmemoized
    // baseline even after the store has absorbed entries from the
    // neighbouring configs.
    let store = rob_verify::memo_handle();
    let mut baselines = Vec::new();
    for n in 2..=4u8 {
        let config = Config::new(n as usize, 2).expect("config");
        let cold = Verifier::new(config).audit(false).run().expect("cold run");
        assert_eq!(cold.verdict, Verdict::Verified);
        baselines.push((config, cold));
    }
    for (config, cold) in &baselines {
        let warm = Verifier::new(*config)
            .audit(false)
            .memo(store.clone())
            .run()
            .expect("memoized run");
        assert_eq!(warm.verdict, cold.verdict);
        assert_eq!(warm.stats, cold.stats);
    }
    // And a second sweep over the now-populated store.
    for (config, cold) in &baselines {
        let warm = Verifier::new(*config)
            .audit(false)
            .memo(store.clone())
            .run()
            .expect("warm run");
        assert_eq!(warm.verdict, cold.verdict);
        assert_eq!(warm.stats, cold.stats);
    }
    let stats = store.stats();
    assert!(stats.hits > 0, "second sweep hit nothing: {stats:?}");
}
