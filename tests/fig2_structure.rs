//! Structural reproduction of the paper's Fig. 2: the Register-File update
//! chains of a 3-entry, width-2 processor before and after the rewriting
//! rules.

use eufm::Node;
use evc::chain;
use evc::rewrite::{rewrite_correctness, RewriteInput, RewriteOptions};
use rob_verify::Config;

/// Fig. 2a, specification side: three updates
/// `<Valid_i, Dest_i, SpecData_i>` over the initial `RegFile`.
#[test]
fn spec_side_chain_matches_fig2a() {
    let config = Config::new(3, 2).expect("config");
    let bundle = rob_verify::generate_correctness(&config).expect("generate");
    let ctx = &bundle.ctx;
    let spec = chain::parse(ctx, bundle.rf_spec[0]).expect("parse");
    assert_eq!(spec.len(), 3);
    for (i, u) in spec.updates.iter().enumerate() {
        // context: the Valid_i propositional variable
        match ctx.node(u.guard) {
            Node::Var(sym, _) => {
                assert_eq!(ctx.name(sym), format!("Valid_{}", i + 1));
            }
            other => panic!("guard of spec update {} is {other:?}", i + 1),
        }
        // address: the Dest_i term variable
        match ctx.node(u.addr) {
            Node::Var(sym, _) => {
                assert_eq!(ctx.name(sym), format!("Dest_{}", i + 1));
            }
            other => panic!("address of spec update {} is {other:?}", i + 1),
        }
        // data: ITE(ValidResult_i, Result_i, ALU(..))
        match ctx.node(u.data) {
            Node::Ite(c, t, e) => {
                assert!(matches!(ctx.node(c), Node::Var(..)));
                assert!(matches!(ctx.node(t), Node::Var(..)));
                assert!(matches!(ctx.node(e), Node::Uf(..)));
            }
            other => panic!("data of spec update {} is {other:?}", i + 1),
        }
    }
}

/// Fig. 2a, implementation side: retire-width instructions appear twice
/// (once retired, once completed by the abstraction function), the third
/// instruction once, followed by the two newly fetched instructions.
#[test]
fn impl_side_chain_matches_fig2a() {
    let config = Config::new(3, 2).expect("config");
    let bundle = rob_verify::generate_correctness(&config).expect("generate");
    let ctx = &bundle.ctx;
    let chain = chain::parse(ctx, bundle.rf_impl).expect("parse");
    // 2 retirement updates + 3 completions + 2 newly fetched completions
    assert_eq!(chain.len(), 7);
    let addr_names: Vec<String> = chain
        .updates
        .iter()
        .map(|u| match ctx.node(u.addr) {
            Node::Var(sym, _) => ctx.name(sym).to_owned(),
            Node::Uf(sym, _, _) => format!("({})", ctx.name(sym)),
            other => panic!("unexpected address {other:?}"),
        })
        .collect();
    assert_eq!(
        addr_names,
        vec![
            "Dest_1",
            "Dest_2",
            "Dest_1",
            "Dest_2",
            "Dest_3",
            "(IMemDest)",
            "(IMemDest)"
        ]
    );
    // Retirement updates write the stored Result_i.
    for (i, u) in chain.updates[..2].iter().enumerate() {
        match ctx.node(u.data) {
            Node::Var(sym, _) => assert_eq!(ctx.name(sym), format!("Result_{}", i + 1)),
            other => panic!("retirement data is {other:?}"),
        }
    }
}

/// Fig. 2b: after the rewriting rules, both sides reference
/// `RegFile_equal_state` and the implementation chain holds only the
/// newly fetched instructions.
#[test]
fn rewritten_chain_matches_fig2b() {
    let config = Config::new(3, 2).expect("config");
    let mut bundle = rob_verify::generate_correctness(&config).expect("generate");
    let input = RewriteInput {
        formula: bundle.formula,
        rf_impl: bundle.rf_impl,
        rf_spec0: bundle.rf_spec[0],
    };
    let options = RewriteOptions {
        render_chains: true,
        ..RewriteOptions::default()
    };
    let outcome = rewrite_correctness(&mut bundle.ctx, &input, &options).expect("rewrite");
    assert_eq!(outcome.slices, 3);
    assert_eq!(outcome.retire_pairs, 2);

    let before = outcome
        .impl_chain_before
        .as_deref()
        .expect("render requested");
    let after = outcome
        .impl_chain_after
        .as_deref()
        .expect("render requested");
    assert!(before.contains("Dest_1"), "before:\n{before}");
    assert!(
        before.trim_end().ends_with("RegFile:m"),
        "before:\n{before}"
    );
    assert!(
        !after.contains("Dest_1"),
        "initial updates must be gone:\n{after}"
    );
    assert!(
        after.trim_end().ends_with("RegFile_equal_state:m"),
        "base must be the fresh equal-state variable:\n{after}"
    );
    assert!(
        after.contains("IMemDest"),
        "newly fetched updates must survive:\n{after}"
    );

    // The rewritten formula must not mention the initial-instruction
    // destination registers any more.
    let mut mentions_dest = false;
    bundle.ctx.visit_post_order(&[outcome.formula], |id| {
        if let Node::Var(sym, _) = bundle.ctx.node(id) {
            if bundle.ctx.name(sym).starts_with("Dest_") {
                mentions_dest = true;
            }
        }
    });
    assert!(
        !mentions_dest,
        "rewritten formula still mentions Dest_i variables"
    );
}

/// The retire conditions have the structure of the paper's formula (1):
/// `retire_2 = Valid_2 ValidResult_2 retire_1`-style nesting makes the
/// retirement and completion contexts of a slice provably disjoint and
/// jointly equal to `Valid_i`.
#[test]
fn retire_context_algebra() {
    use eufm::oracle::check_exhaustive;
    let config = Config::new(3, 2).expect("config");
    let mut bundle = rob_verify::generate_correctness(&config).expect("generate");
    let chain = chain::parse(&bundle.ctx, bundle.rf_impl).expect("parse");
    let ctx = &mut bundle.ctx;
    // updates 0,1 are retirements of slices 1,2; updates 2,3 their completions
    for i in 0..2 {
        let ret = chain.updates[i].guard;
        let comp = chain.updates[i + 2].guard;
        let valid = ctx.pvar(&format!("Valid_{}", i + 1));
        let overlap = ctx.and2(ret, comp);
        let no_overlap = ctx.not(overlap);
        assert!(check_exhaustive(ctx, no_overlap, 1 << 22).is_valid());
        let together = ctx.or2(ret, comp);
        let same = ctx.iff(together, valid);
        assert!(check_exhaustive(ctx, same, 1 << 22).is_valid());
    }
}
