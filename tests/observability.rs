//! Observability acceptance tests: span-tree coverage of a full
//! verification run, the golden metric set with its Prometheus
//! exposition, and exact agreement between the metrics registry and the
//! [`Verification`] statistics.
//!
//! Every test here asserts exact metric values, so each opens an
//! exclusive window with [`trace::metrics_test_guard`]; the registry is
//! process-global, which is also why these tests live in their own
//! binary rather than alongside unrelated integration tests.

use rob_verify::trace::{self, MetricKind};
use rob_verify::{BugSpec, Config, Operand, Strategy, Verdict, Verifier};

/// The golden pipeline metric set: every one of these counters must be
/// registered after a single full run with the default strategy. Names
/// are part of the exposition contract — renaming one is a breaking
/// change for downstream scrapes.
const GOLDEN_COUNTERS: &[&str] = &[
    "eufm.nodes.cache_hits",
    "eufm.nodes.interned",
    "evc.pe.eij_vars",
    "evc.pe.gterms",
    "evc.pe.pterms",
    "evc.rewrite.obligations",
    "evc.rewrite.retire_pairs",
    "evc.rewrite.syntactic",
    "sat.cdcl.conflicts",
    "sat.cdcl.decisions",
    "sat.cdcl.propagations",
    "sat.tseitin.clauses",
    "sat.tseitin.vars",
    "tlsim.sim.events",
];

/// Per-rule deletion counters register lazily, only when their rule
/// fires; any that appear must come from this set.
const RULE_COUNTERS: &[&str] = &[
    "evc.rewrite.rule.r1",
    "evc.rewrite.rule.r2",
    "evc.rewrite.rule.r3",
    "evc.rewrite.rule.r4",
    "evc.rewrite.rule.r5",
];

fn counter(name: &str) -> u64 {
    trace::snapshot()
        .iter()
        .find(|s| s.name == name)
        .unwrap_or_else(|| panic!("metric {name} not registered"))
        .value
}

/// Fig. 2's 3-entry, width-2 processor — the paper's running example.
fn fig2_config() -> Config {
    Config::new(3, 2).expect("config")
}

#[test]
fn golden_metric_set_and_prometheus_exposition() {
    let _guard = trace::metrics_test_guard();
    let v = Verifier::new(fig2_config()).run().expect("run");
    assert_eq!(v.verdict, Verdict::Verified);

    let samples = trace::snapshot();
    let names: Vec<&str> = samples.iter().map(|s| s.name).collect();
    for expected in GOLDEN_COUNTERS {
        assert!(names.contains(expected), "missing metric {expected}");
    }
    for sample in &samples {
        assert!(
            sample
                .name
                .chars()
                .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '.' || c == '_'),
            "metric name breaks the naming discipline: {}",
            sample.name
        );
        if sample.name.starts_with("evc.rewrite.rule.") {
            assert!(
                RULE_COUNTERS.contains(&sample.name),
                "unknown rule counter {}",
                sample.name
            );
        }
    }
    // The snapshot is sorted by name — the exposition order contract.
    let mut sorted = names.clone();
    sorted.sort_unstable();
    assert_eq!(names, sorted);

    // Prometheus text format: `rob_` prefix, dots to underscores,
    // `_total` suffix on counters, one `# TYPE` line per metric.
    assert_eq!(
        trace::prometheus_name("evc.pe.eij_vars", MetricKind::Counter),
        "rob_evc_pe_eij_vars_total"
    );
    assert_eq!(
        trace::prometheus_name("serve.cache.entries", MetricKind::Gauge),
        "rob_serve_cache_entries"
    );
    let text = trace::prometheus();
    assert!(text.contains("# TYPE rob_evc_pe_eij_vars_total counter"));
    assert!(text.contains(&format!(
        "rob_evc_pe_eij_vars_total {}\n",
        counter("evc.pe.eij_vars")
    )));
    for line in text.lines() {
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut parts = rest.split(' ');
            let name = parts.next().expect("name");
            let kind = parts.next().expect("kind");
            assert!(name.starts_with("rob_"), "{line}");
            assert!(kind == "counter" || kind == "gauge", "{line}");
            if kind == "counter" {
                assert!(name.ends_with("_total"), "{line}");
            }
        } else {
            let mut parts = line.split(' ');
            let name = parts.next().expect("name");
            let value = parts.next().expect("value");
            assert!(name.starts_with("rob_"), "{line}");
            assert!(value.parse::<u64>().is_ok(), "{line}");
        }
    }
}

#[test]
fn counters_agree_with_verification_stats_on_fig2() {
    let _guard = trace::metrics_test_guard();
    let v = Verifier::new(fig2_config()).run().expect("run");
    assert_eq!(v.verdict, Verdict::Verified);

    assert_eq!(counter("evc.pe.eij_vars"), v.stats.eij_vars as u64);
    assert_eq!(counter("sat.tseitin.vars"), v.stats.cnf_vars as u64);
    assert_eq!(counter("sat.tseitin.clauses"), v.stats.cnf_clauses as u64);
    assert_eq!(counter("sat.cdcl.conflicts"), v.stats.sat_conflicts);
    assert_eq!(counter("sat.cdcl.decisions"), v.stats.sat_decisions);
    assert_eq!(counter("sat.cdcl.propagations"), v.stats.sat_propagations);
    assert_eq!(
        counter("evc.rewrite.obligations"),
        v.stats.rewrite_obligations as u64
    );
    assert_eq!(
        counter("evc.rewrite.syntactic"),
        v.stats.rewrite_syntactic as u64
    );
    assert_eq!(
        counter("evc.rewrite.retire_pairs"),
        v.stats.retire_pairs as u64
    );
    // The rewriting rules fired: their per-rule deletion counters sum to
    // at least the merged retire pairs.
    let rule_total: u64 = RULE_COUNTERS
        .iter()
        .map(|name| {
            trace::snapshot()
                .iter()
                .find(|s| s.name == *name)
                .map_or(0, |s| s.value)
        })
        .sum();
    assert!(rule_total > 0, "no rewrite rule fired on Fig. 2");
}

#[test]
fn counters_agree_with_verification_stats_on_seeded_bug() {
    let _guard = trace::metrics_test_guard();
    let v = Verifier::new(Config::new(4, 2).expect("config"))
        .strategy(Strategy::PositiveEqualityOnly)
        .bug(BugSpec::ForwardingIgnoresValidResult {
            slice: 2,
            operand: Operand::Src2,
        })
        .run()
        .expect("run");
    assert!(v.verdict.is_falsification(), "{:?}", v.verdict);

    assert_eq!(counter("evc.pe.eij_vars"), v.stats.eij_vars as u64);
    assert_eq!(counter("sat.tseitin.vars"), v.stats.cnf_vars as u64);
    assert_eq!(counter("sat.tseitin.clauses"), v.stats.cnf_clauses as u64);
    assert_eq!(counter("sat.cdcl.conflicts"), v.stats.sat_conflicts);
    assert_eq!(counter("sat.cdcl.decisions"), v.stats.sat_decisions);
    assert_eq!(counter("sat.cdcl.propagations"), v.stats.sat_propagations);
    // PE-only never rewrites.
    assert_eq!(counter("evc.rewrite.obligations"), 0);
}

/// Satellite of the memoization PR: a warm (fully memoized) run must not
/// re-count pipeline work into the process-global counters. The
/// `Verification` statistics it *reports* are byte-identical to the cold
/// run's — that equivalence is pinned in `tests/memoization.rs` — but the
/// counters measure work actually performed, and a memoized discharge
/// performed none.
#[test]
fn memoized_run_does_not_recount_pipeline_work() {
    let _guard = trace::metrics_test_guard();
    let store = rob_verify::memo_handle();
    // Cold run populates the store. Auditing is off because the audit's
    // deliverables are not in the memo record, so auditing disables the
    // main-solve memo.
    let cold = Verifier::new(fig2_config())
        .audit(false)
        .memo(store.clone())
        .run()
        .expect("cold run");
    assert_eq!(cold.verdict, Verdict::Verified);

    // Counters that measure SAT/PE pipeline work: a fully warm run skips
    // all of it, so these must not move at all.
    const PIPELINE: &[&str] = &[
        "evc.pe.eij_vars",
        "evc.pe.gterms",
        "evc.pe.pterms",
        "sat.cdcl.conflicts",
        "sat.cdcl.decisions",
        "sat.cdcl.propagations",
        "sat.tseitin.clauses",
        "sat.tseitin.vars",
    ];
    let before: Vec<u64> = PIPELINE.iter().map(|n| counter(n)).collect();
    let obligations_before = counter("evc.rewrite.obligations");
    let syntactic_before = counter("evc.rewrite.syntactic");
    let hits_before = trace::snapshot()
        .iter()
        .find(|s| s.name == "memo.hits")
        .map_or(0, |s| s.value);

    let warm = Verifier::new(fig2_config())
        .audit(false)
        .memo(store)
        .run()
        .expect("warm run");
    assert_eq!(warm.verdict, cold.verdict);
    assert_eq!(warm.stats, cold.stats);

    for (name, &b) in PIPELINE.iter().zip(&before) {
        assert_eq!(counter(name), b, "memoized run re-counted {name}");
    }
    // Syntactic discharges are real (cheap) work repeated every run and
    // still count; memoized discharges must not. On a fully warm run the
    // obligation counter therefore moves by exactly the syntactic count.
    let syntactic_delta = counter("evc.rewrite.syntactic") - syntactic_before;
    assert_eq!(
        counter("evc.rewrite.obligations") - obligations_before,
        syntactic_delta,
        "memoized discharges leaked into evc.rewrite.obligations"
    );
    assert!(
        counter("memo.hits") > hits_before,
        "warm run reported no memo hits"
    );
}

#[test]
fn span_tree_covers_pipeline_phases_and_telescopes() {
    // Spans are thread-local, but this run also feeds the process-global
    // counters; holding the guard keeps it out of the exact-value
    // windows of the sibling tests.
    let _guard = trace::metrics_test_guard();
    let (v, tree) = Verifier::new(fig2_config())
        .run_traced()
        .expect("traced run");
    assert_eq!(v.verdict, Verdict::Verified);
    tree.well_formed().expect("well-formed span tree");

    // One root — the whole run — whose cumulative time is the traced
    // total, with at least six distinct named phases beneath it.
    let roots = tree.roots();
    assert_eq!(roots.len(), 1);
    assert_eq!(tree.nodes[roots[0]].name, "verify");
    assert_eq!(tree.nodes[roots[0]].cumulative, tree.total());
    let names = tree.names();
    for expected in [
        "verify",
        "generate",
        "tlsim.step",
        "evc.rewrite",
        "evc.mem",
        "evc.polarity",
        "evc.uf_elim",
        "evc.pe",
        "evc.chain",
        "sat.tseitin",
        "sat.cdcl",
    ] {
        assert!(names.contains(&expected), "missing phase {expected}");
    }
    assert!(names.len() >= 6);

    // Self times partition the wall time exactly: no clamping, no gaps.
    let rollup = tree.rollup();
    let self_sum: std::time::Duration = rollup.iter().map(|p| p.self_time).sum();
    assert_eq!(self_sum, tree.total());
    let cumulative = rollup
        .iter()
        .find(|p| p.name == "verify")
        .expect("verify phase")
        .cumulative;
    assert_eq!(cumulative, tree.total());

    // The flamegraph report names every phase with a percentage column.
    let report = tree.flamegraph();
    assert!(report.contains("verify"), "{report}");
    assert!(report.contains('%'), "{report}");
}
