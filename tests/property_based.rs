//! Property-based tests over the core data structures and transformation
//! passes, using random EUFM formulas and random CNF instances.

use proptest::prelude::*;

use eufm::oracle::{check_exhaustive, check_sampled, OracleResult};
use eufm::{Context, ExprId, Sort};
use sat::cnf::{Cnf, Lit, Var};
use sat::solver::{Outcome, Solver};

// ---------------------------------------------------------------------------
// Random EUFM formula generation
// ---------------------------------------------------------------------------

/// A compact recipe for building a random formula inside a fresh context.
#[derive(Debug, Clone)]
enum FormulaOp {
    PropVar(u8),
    EqVars(u8, u8),
    EqUf(u8, u8),
    Not,
    And,
    Or,
    Ite,
}

fn formula_ops() -> impl Strategy<Value = Vec<FormulaOp>> {
    prop::collection::vec(
        prop_oneof![
            (0u8..4).prop_map(FormulaOp::PropVar),
            (0u8..4, 0u8..4).prop_map(|(a, b)| FormulaOp::EqVars(a, b)),
            (0u8..4, 0u8..4).prop_map(|(a, b)| FormulaOp::EqUf(a, b)),
            Just(FormulaOp::Not),
            Just(FormulaOp::And),
            Just(FormulaOp::Or),
            Just(FormulaOp::Ite),
        ],
        1..40,
    )
}

/// Builds a formula from a stack program; always leaves one formula.
fn build_formula(ctx: &mut Context, ops: &[FormulaOp]) -> ExprId {
    let tvars: Vec<ExprId> = (0..4).map(|i| ctx.tvar(&format!("t{i}"))).collect();
    let mut stack: Vec<ExprId> = Vec::new();
    for op in ops {
        match op {
            FormulaOp::PropVar(i) => stack.push(ctx.pvar(&format!("p{i}"))),
            FormulaOp::EqVars(a, b) => {
                let e = ctx.eq(tvars[*a as usize], tvars[*b as usize]);
                stack.push(e);
            }
            FormulaOp::EqUf(a, b) => {
                let fa = ctx.uf("f", vec![tvars[*a as usize]]);
                let fb = ctx.uf("f", vec![tvars[*b as usize]]);
                let e = ctx.eq(fa, fb);
                stack.push(e);
            }
            FormulaOp::Not => {
                if let Some(x) = stack.pop() {
                    let n = ctx.not(x);
                    stack.push(n);
                }
            }
            FormulaOp::And => {
                if stack.len() >= 2 {
                    let b = stack.pop().expect("len checked");
                    let a = stack.pop().expect("len checked");
                    let r = ctx.and2(a, b);
                    stack.push(r);
                }
            }
            FormulaOp::Or => {
                if stack.len() >= 2 {
                    let b = stack.pop().expect("len checked");
                    let a = stack.pop().expect("len checked");
                    let r = ctx.or2(a, b);
                    stack.push(r);
                }
            }
            FormulaOp::Ite => {
                if stack.len() >= 3 {
                    let e = stack.pop().expect("len checked");
                    let t = stack.pop().expect("len checked");
                    let c = stack.pop().expect("len checked");
                    let r = ctx.ite(c, t, e);
                    stack.push(r);
                }
            }
        }
    }
    let fallback = ctx.pvar("p0");
    stack.pop().unwrap_or(fallback)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The full EVC translation (UF elimination + Positive Equality + SAT)
    /// agrees with the brute-force oracle on random formulas.
    #[test]
    fn evc_check_agrees_with_oracle(ops in formula_ops()) {
        let mut ctx = Context::new();
        let f = build_formula(&mut ctx, &ops);
        let expected = match check_sampled(&ctx, f, 600) {
            OracleResult::Valid => true,
            OracleResult::Invalid(_) => false,
            OracleResult::Unsupported(_) => return Ok(()),
        };
        let report = evc::check::check_validity(
            &mut ctx, f, &evc::check::CheckOptions::default());
        let got = report.outcome.is_valid();
        // The sampling oracle can only err by calling an invalid formula
        // valid; a formula the pipeline PROVES valid therefore must pass
        // sampling, and a formula the pipeline refutes must... also be
        // refutable. Both directions must agree up to sampling confidence.
        prop_assert_eq!(got, expected,
            "pipeline and oracle disagree on {}", eufm::print::to_sexpr(&ctx, f));
    }

    /// UF elimination preserves exact validity (checked by the exhaustive
    /// oracle on the UF-free result and sampling on the original).
    #[test]
    fn uf_elimination_preserves_validity(ops in formula_ops()) {
        let mut ctx = Context::new();
        let f = build_formula(&mut ctx, &ops);
        let before = match check_sampled(&ctx, f, 600) {
            OracleResult::Valid => true,
            OracleResult::Invalid(_) => false,
            OracleResult::Unsupported(_) => return Ok(()),
        };
        let elim = evc::uf_elim::eliminate(&mut ctx, f);
        match check_exhaustive(&ctx, elim.root, 1 << 22) {
            OracleResult::Valid => prop_assert!(before),
            OracleResult::Invalid(_) => prop_assert!(!before),
            OracleResult::Unsupported(_) => {}
        }
    }

    /// Substitution of a variable by a constant is evaluation-compatible.
    #[test]
    fn cofactor_agrees_with_evaluation(ops in formula_ops(), value in any::<bool>()) {
        use eufm::eval::{eval_formula, Assignment, HashModel};
        use eufm::subst::cofactor;
        let mut ctx = Context::new();
        let f = build_formula(&mut ctx, &ops);
        let p = ctx.pvar("p0");
        let g = cofactor(&mut ctx, f, p, value);
        let model = HashModel::new(11, 5);
        for seed in 0..20u64 {
            let mut asn = Assignment::default();
            for i in 0..4 {
                let v = ctx.pvar(&format!("p{i}"));
                asn.boolean.insert(v, (seed >> i) & 1 == 1);
            }
            for i in 0..4 {
                let v = ctx.tvar(&format!("t{i}"));
                asn.term.insert(v, (seed + i) % 5);
            }
            asn.boolean.insert(p, value);
            prop_assert_eq!(
                eval_formula(&ctx, f, &asn, &model),
                eval_formula(&ctx, g, &asn, &model)
            );
        }
    }
}

// ---------------------------------------------------------------------------
// Obligation digests (memoization keys)
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Obligation digests are structural, not context- or
    /// process-dependent: the same formula built in two independent
    /// contexts (with interleaved unrelated construction perturbing one
    /// context's id space) digests identically. Cross-process stability
    /// follows from context independence plus the golden FNV vectors
    /// pinned in `eufm::digest`.
    #[test]
    fn obligation_digests_are_context_independent(ops in formula_ops()) {
        let mut ctx1 = Context::new();
        let f1 = build_formula(&mut ctx1, &ops);

        let mut ctx2 = Context::new();
        // Skew ctx2's ExprId numbering before building the same formula.
        let x = ctx2.tvar("skew_x");
        let _ = ctx2.uf("skew_f", vec![x]);
        let _ = ctx2.pvar("skew_p");
        let f2 = build_formula(&mut ctx2, &ops);

        let d1 = eufm::digest::Digester::new().digest(&ctx1, f1);
        let d2 = eufm::digest::Digester::new().digest(&ctx2, f2);
        prop_assert_eq!(d1, d2,
            "digest depends on context state for {}",
            eufm::print::to_sexpr(&ctx1, f1));
    }

    /// Distinct obligations get distinct digests: two formulas with
    /// different canonical renderings never collide (within the hash-
    /// cons context, structural inequality is id inequality).
    #[test]
    fn distinct_obligations_get_distinct_digests(
        ops1 in formula_ops(), ops2 in formula_ops()) {
        let mut ctx = Context::new();
        let f1 = build_formula(&mut ctx, &ops1);
        let f2 = build_formula(&mut ctx, &ops2);
        let mut digester = eufm::digest::Digester::new();
        let d1 = digester.digest(&ctx, f1);
        let d2 = digester.digest(&ctx, f2);
        if f1 == f2 {
            prop_assert_eq!(d1, d2);
        } else {
            prop_assert!(d1 != d2,
                "digest collision between {} and {}",
                eufm::print::to_sexpr(&ctx, f1),
                eufm::print::to_sexpr(&ctx, f2));
        }
    }
}

// ---------------------------------------------------------------------------
// SAT solver vs brute force
// ---------------------------------------------------------------------------

fn arb_cnf() -> impl Strategy<Value = (usize, Vec<Vec<i8>>)> {
    (2usize..=8).prop_flat_map(|nvars| {
        let clause = prop::collection::vec(
            (0..nvars as i8 * 2).prop_map(move |x| x - nvars as i8),
            1..4,
        );
        prop::collection::vec(clause, 1..24).prop_map(move |cs| (nvars, cs))
    })
}

fn brute_force_sat(nvars: usize, clauses: &[Vec<Lit>]) -> bool {
    (0u32..1 << nvars).any(|bits| {
        clauses.iter().all(|c| {
            c.iter().any(|l| {
                let val = bits >> l.var().index() & 1 == 1;
                val == l.is_positive()
            })
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The CDCL solver agrees with exhaustive enumeration on random small
    /// CNFs, and its models really satisfy the formula.
    #[test]
    fn cdcl_agrees_with_brute_force((nvars, raw) in arb_cnf()) {
        let mut cnf = Cnf::new();
        let vars: Vec<Var> = (0..nvars).map(|_| cnf.new_var()).collect();
        let mut clauses: Vec<Vec<Lit>> = Vec::new();
        for rc in &raw {
            let clause: Vec<Lit> = rc
                .iter()
                .map(|&x| {
                    let idx = (x.unsigned_abs() as usize).min(nvars.saturating_sub(1));
                    Lit::with_sign(vars[idx], x >= 0)
                })
                .collect();
            cnf.add_clause(clause.iter().copied());
            clauses.push(clause);
        }
        let expected = brute_force_sat(nvars, &clauses);
        let mut solver = Solver::from_cnf(&cnf);
        match solver.solve() {
            Outcome::Sat(model) => {
                prop_assert!(expected, "solver found a model for an UNSAT formula");
                for c in &clauses {
                    prop_assert!(c.iter().any(|&l| model.lit_value(l)),
                        "model violates clause");
                }
            }
            Outcome::Unsat => prop_assert!(!expected, "solver refuted a SAT formula"),
            Outcome::Unknown(r) => prop_assert!(false, "unexpected limit: {r:?}"),
        }
    }

    /// DIMACS round-trips arbitrary CNFs.
    #[test]
    fn dimacs_roundtrip((nvars, raw) in arb_cnf()) {
        let mut cnf = Cnf::new();
        let vars: Vec<Var> = (0..nvars).map(|_| cnf.new_var()).collect();
        for rc in &raw {
            let clause: Vec<Lit> = rc
                .iter()
                .map(|&x| {
                    let idx = (x.unsigned_abs() as usize).min(nvars.saturating_sub(1));
                    Lit::with_sign(vars[idx], x >= 0)
                })
                .collect();
            cnf.add_clause(clause);
        }
        let text = sat::dimacs::to_dimacs(&cnf);
        let parsed = sat::dimacs::from_dimacs(&text).expect("parse");
        prop_assert_eq!(sat::dimacs::to_dimacs(&parsed), text);
    }
}

// ---------------------------------------------------------------------------
// Hash-consing invariants
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Rebuilding the same formula in the same context yields the same id;
    /// print/parse round-tripping reaches a fixed point after one
    /// normalization (equation orientation is canonical per context, so the
    /// first reparse may flip operand order, after which the form is
    /// stable).
    #[test]
    fn consing_and_print_roundtrip(ops in formula_ops()) {
        let mut ctx = Context::new();
        let f1 = build_formula(&mut ctx, &ops);
        let f2 = build_formula(&mut ctx, &ops);
        prop_assert_eq!(f1, f2);
        prop_assert_eq!(ctx.sort(f1), Sort::Bool);
        let printed = eufm::print::to_sexpr(&ctx, f1);
        let mut ctx2 = Context::new();
        let parsed = eufm::parse::from_sexpr(&mut ctx2, &printed).expect("reparse");
        let normalized = eufm::print::to_sexpr(&ctx2, parsed);
        let mut ctx3 = Context::new();
        let reparsed = eufm::parse::from_sexpr(&mut ctx3, &normalized).expect("reparse");
        prop_assert_eq!(eufm::print::to_sexpr(&ctx3, reparsed), normalized);
    }
}
