//! Workspace-level end-to-end tests of the [`rob_verify::Verifier`] API:
//! both strategies across a grid of configurations, every bug kind, and the
//! agreement between strategies on verdicts.

use rob_verify::{BugSpec, Config, Limits, Operand, Strategy, Verdict, Verifier};

#[test]
fn rewriting_verifies_a_grid_of_configs() {
    for (n, k) in [(1, 1), (2, 1), (3, 3), (4, 2), (8, 4), (8, 8), (12, 2)] {
        let config = Config::new(n, k).expect("config");
        let v = Verifier::new(config).run().expect("run");
        assert_eq!(v.verdict, Verdict::Verified, "rob{n}xw{k} must verify");
        assert_eq!(
            v.stats.eij_vars, 0,
            "rob{n}xw{k} must need no e_ij variables"
        );
        assert_eq!(v.stats.retire_pairs, k.min(n));
    }
}

#[test]
fn pe_only_agrees_on_small_configs() {
    for (n, k) in [(1, 1), (2, 2), (3, 1)] {
        let config = Config::new(n, k).expect("config");
        let v = Verifier::new(config)
            .strategy(Strategy::PositiveEqualityOnly)
            .run()
            .expect("run");
        assert_eq!(
            v.verdict,
            Verdict::Verified,
            "rob{n}xw{k} must verify PE-only"
        );
    }
}

#[test]
fn cnf_size_is_independent_of_rob_size_with_rewriting() {
    // Paper Table 5: "the results do not depend on the size of the reorder
    // buffer" once rewriting has removed the initial instructions.
    let sizes = [4usize, 8, 16, 24];
    let mut cnf_sizes = Vec::new();
    for n in sizes {
        let config = Config::new(n, 2).expect("config");
        let v = Verifier::new(config).run().expect("run");
        assert_eq!(v.verdict, Verdict::Verified);
        cnf_sizes.push((v.stats.cnf_vars, v.stats.cnf_clauses));
    }
    assert!(
        cnf_sizes.windows(2).all(|w| w[0] == w[1]),
        "CNF size must not vary with reorder-buffer size: {cnf_sizes:?}"
    );
}

#[test]
fn every_bug_kind_is_caught_by_rewriting() {
    let config = Config::new(6, 3).expect("config");
    let bugs = [
        (
            BugSpec::ForwardingIgnoresValidResult {
                slice: 4,
                operand: Operand::Src1,
            },
            4,
        ),
        (
            BugSpec::ForwardingIgnoresValidResult {
                slice: 5,
                operand: Operand::Src2,
            },
            5,
        ),
        (
            BugSpec::ForwardingSkipsNearest {
                slice: 4,
                operand: Operand::Src1,
            },
            4,
        ),
        (BugSpec::RetireOutOfOrder { slice: 2 }, 2),
        (BugSpec::RetireOutOfOrder { slice: 3 }, 3),
        (BugSpec::RetireIgnoresValid { slice: 2 }, 2),
        (BugSpec::CompletionUsesStaleResult { slice: 5 }, 5),
    ];
    for (bug, expected_slice) in bugs {
        let v = Verifier::new(config).bug(bug).run().expect("run");
        match v.verdict {
            Verdict::SliceDiagnosis { slice, .. } => {
                assert_eq!(slice, expected_slice, "bug {bug:?} misattributed");
            }
            other => panic!("bug {bug:?} not diagnosed: {other:?}"),
        }
    }
}

#[test]
fn bugs_also_falsify_under_pe_only() {
    // PE-only has no localization but must still refute buggy designs.
    let config = Config::new(3, 1).expect("config");
    let bugs = [
        BugSpec::ForwardingIgnoresValidResult {
            slice: 2,
            operand: Operand::Src1,
        },
        BugSpec::CompletionUsesStaleResult { slice: 3 },
    ];
    for bug in bugs {
        let v = Verifier::new(config)
            .bug(bug)
            .strategy(Strategy::PositiveEqualityOnly)
            .run()
            .expect("run");
        assert!(
            matches!(v.verdict, Verdict::Falsified { .. }),
            "bug {bug:?} not falsified: {:?}",
            v.verdict
        );
    }
}

#[test]
fn retire_ignores_valid_under_pe_only() {
    // This defect writes the register file for instructions whose Valid bit
    // is false; width 2 so slice 2 exists within the retire width.
    let config = Config::new(2, 2).expect("config");
    let v = Verifier::new(config)
        .bug(BugSpec::RetireIgnoresValid { slice: 2 })
        .strategy(Strategy::PositiveEqualityOnly)
        .run()
        .expect("run");
    assert!(
        matches!(v.verdict, Verdict::Falsified { .. }),
        "got {:?}",
        v.verdict
    );
}

#[test]
fn resource_limits_report_gracefully() {
    let config = Config::new(8, 2).expect("config");
    let v = Verifier::new(config)
        .strategy(Strategy::PositiveEqualityOnly)
        .max_nodes(2_000)
        .run()
        .expect("run");
    assert!(
        matches!(v.verdict, Verdict::ResourceLimit(_)),
        "tiny node budget must interrupt translation: {:?}",
        v.verdict
    );

    let v = Verifier::new(config)
        .strategy(Strategy::PositiveEqualityOnly)
        .sat_limits(Limits {
            max_conflicts: Some(2),
            ..Limits::none()
        })
        .run()
        .expect("run");
    assert!(
        matches!(v.verdict, Verdict::ResourceLimit(_)),
        "tiny conflict budget must interrupt SAT: {:?}",
        v.verdict
    );
}

#[test]
fn timings_are_populated() {
    let config = Config::new(4, 2).expect("config");
    let v = Verifier::new(config).run().expect("run");
    assert!(v.timings.total() > std::time::Duration::ZERO);
    assert!(v.timings.rewrite > std::time::Duration::ZERO);
}

#[test]
fn invalid_bug_configs_error() {
    let config = Config::new(4, 2).expect("config");
    let err = Verifier::new(config).bug(BugSpec::paper_variant()).run();
    assert!(err.is_err(), "slice 72 cannot fit a 4-entry buffer");
}
